"""The FaultInjectionAlgorithms class (paper Figure 2).

Fault-injection algorithms are *compositions of abstract building blocks*:
``init_test_card``, ``load_workload``, ``run_workload``,
``wait_for_breakpoint``, ``read_scan_chain``, ``inject_fault``,
``write_scan_chain``, ``wait_for_termination`` and so on. The concrete
algorithms — ``fault_injector_scifi``, ``fault_injector_swifi_pre``,
``fault_injector_swifi_runtime``, ``fault_injector_simfi`` — call only
these blocks, never target-specific code. Porting the tool to a new
target means implementing the blocks in a subclass of
:class:`~repro.core.framework.Framework` (paper Figure 3); adding a new
technique means writing one more composition here and, when needed, adding
previously-undefined blocks (paper Section 2.1).
"""

from __future__ import annotations

import abc
import random
import time as _time
from typing import Dict, List, Optional, Sequence

from repro.core.campaign import CampaignData
from repro.core.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    MAX_CHECKPOINTS,
    CheckpointMismatch,
    CheckpointStore,
    CheckpointTick,
    RestoreImage,
)
from repro.core.divergence import (
    MemoEntry,
    OutcomeMemo,
    memo_key,
    run_window,
)
from repro.core.experiment import (
    ExperimentResult,
    Injection,
    ReferenceRun,
    StateVector,
    Termination,
)
from repro.core.faultmodels import FaultModel, InjectionPlan, build_fault_model
from repro.core.locations import FaultLocation, LocationSpace
from repro.core.preinjection import build_liveness_oracle
from repro.core.trace import Trace
from repro.observability import get_observability
from repro.util.errors import CampaignError, NotImplementedByPort
from repro.util.rng import CampaignRandom

# Reference-run cycle budget when the campaign does not set an explicit
# timeout (the reference run has no prior duration to derive one from).
_REFERENCE_BUDGET = 50_000_000

#: Techniques eligible for golden-run warm starts: their pre-injection
#: prefix is pure execution from reset, so restoring a reference-run
#: checkpoint at or before the first injection time is state-identical
#: to re-simulating it. The SWIFI techniques mutate the image or
#: instrumentation *before* execution starts and therefore always start
#: cold.
WARM_START_TECHNIQUES = ("scifi", "simfi", "pinlevel")

#: Techniques whose experiments may be collapsed by the equivalence
#: engine. The soundness argument (see
#: :mod:`repro.staticanalysis.equivalence`) requires that an experiment
#: is "golden execution up to a stop-at-cycle breakpoint, then one bit
#: flip" — exactly the stop-and-inject techniques. The SWIFI variants
#: mutate the image or instrument the workload before execution, so two
#: different injection times are different programs from cycle 0.
EQUIVALENCE_TECHNIQUES = ("scifi", "simfi", "pinlevel")


class StopCampaign(Exception):
    """Raised by a control hook to end the campaign early (the progress
    window's End button)."""


class _NullControl:
    """Default no-op control hooks (no GUI attached)."""

    def checkpoint(self, index: int) -> None:
        pass

    def report(self, index: int, result: ExperimentResult) -> None:
        pass


class _ListSink:
    """Default in-memory result sink."""

    def __init__(self) -> None:
        self.reference: Optional[ReferenceRun] = None
        self.results: List[ExperimentResult] = []

    def log_reference(self, campaign: CampaignData, ref: ReferenceRun) -> None:
        self.reference = ref

    def log_experiment(
        self, campaign: CampaignData, result: ExperimentResult
    ) -> None:
        self.results.append(result)


class FaultInjectionAlgorithms(abc.ABC):
    """Abstract algorithm layer: building blocks + their compositions."""

    # Map technique name -> bound method name, used by the framework layer
    # and the campaign controller to dispatch a campaign.
    TECHNIQUE_METHODS = {
        "scifi": "fault_injector_scifi",
        "swifi-pre": "fault_injector_swifi_pre",
        "swifi-runtime": "fault_injector_swifi_runtime",
        "simfi": "fault_injector_simfi",
        "pinlevel": "fault_injector_pinlevel",
    }

    # Which location spaces each technique can reach. SCIFI reaches what
    # the scan chains expose; pre-runtime SWIFI only the downloaded
    # program/data image; runtime SWIFI the software-visible state;
    # simulation-based FI everything.
    TECHNIQUE_SPACES = {
        "scifi": ("scan:",),
        "swifi-pre": ("memory:",),
        "swifi-runtime": ("memory:", "swreg"),
        "simfi": ("scan:", "memory:", "swreg"),
        "pinlevel": ("scan:boundary",),
    }

    def __init__(self) -> None:
        self.campaign: Optional[CampaignData] = None
        self._locations: List[FaultLocation] = []
        self._fault_model: Optional[FaultModel] = None
        self._rng: Optional[CampaignRandom] = None
        #: Liveness oracle (dynamic, static, or hybrid) when the campaign
        #: enables pre-injection analysis; any object with an
        #: ``is_live(location, time)`` method.
        self._liveness = None
        #: :class:`repro.staticanalysis.equivalence.
        #: EquivalencePreInjectionAnalysis` when the campaign selects
        #: ``preinjection_mode="equivalence"`` — the campaign loop uses
        #: it to partition the planned fault list.
        self._equivalence = None
        #: Fraction of statically-derived experiment outcomes that are
        #: re-executed for real and compared against the derivation
        #: (``goofi run --verify-equivalence P``). Any divergence is a
        #: hard failure. Not part of CampaignData: verification does not
        #: change what the campaign computes, only how much of it is
        #: double-checked, so it must not perturb config hashes.
        self.verify_equivalence: float = 0.0
        self._reference: Optional[ReferenceRun] = None
        #: Checkpoints captured along the reference run (warm starts);
        #: None when the campaign, technique or port rules them out.
        self._checkpoints: Optional[CheckpointStore] = None
        #: Divergence-window execution: probe the faulty run's state
        #: digest against the golden checkpoints after injection and
        #: synthesize the golden outcome on re-convergence instead of
        #: simulating the tail. Not part of CampaignData for the same
        #: reason as :attr:`verify_equivalence`: it changes how much is
        #: simulated, never what the campaign computes (byte-identity is
        #: property-tested), so it must not perturb config hashes.
        #: Disabled by ``goofi run --no-early-exit``.
        self.early_exit: bool = True
        #: Outcome memoization: replay the recorded outcome of an
        #: earlier experiment with the same (restore checkpoint digest,
        #: canonical injection delta) key instead of executing. Same
        #: non-CampaignData rationale as :attr:`early_exit`.
        self.memoize: bool = True
        #: Per-campaign-binding memo table (reset on rebind: a "cold"
        #: key from another workload must never shortcut this one).
        self._memo: Optional[OutcomeMemo] = None
        #: Optional :class:`repro.core.goldencache.GoldenRunCache` —
        #: when set, :meth:`prepare_run` reuses a cached golden run
        #: (trace + fingerprint + checkpoint store) keyed by the
        #: campaign's config hash instead of re-executing it.
        self.golden_cache = None

    # ------------------------------------------------------------------
    # Abstract building blocks (Figure 2). A port implements the subset
    # needed by the techniques it supports; the Framework template provides
    # "Write your code here!" stubs for all of them.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def init_test_card(self) -> None:
        """Power-cycle / reinitialise the target system."""

    @abc.abstractmethod
    def load_workload(self) -> None:
        """Download the campaign's workload image to the target."""

    @abc.abstractmethod
    def write_memory(self) -> None:
        """Download the workload's initial input data."""

    @abc.abstractmethod
    def read_memory(self) -> Dict[str, int]:
        """Read back the workload's output values."""

    @abc.abstractmethod
    def run_workload(self) -> None:
        """Start (arm) execution of the downloaded workload."""

    @abc.abstractmethod
    def wait_for_breakpoint(self, stop_cycle: int) -> Optional[Termination]:
        """Run until the injection point. Returns None when the breakpoint
        was reached, or a Termination if the experiment ended first."""

    @abc.abstractmethod
    def read_scan_chain(
        self, names: Optional[Sequence[str]] = None
    ) -> Dict[str, List[int]]:
        """Shift out scan chains (chain name -> bit list). ``names``
        restricts the shift to the listed chains — the default SCIFI
        fast path only round-trips the chains an action touches; None
        (or ``campaign.full_scan_shift``) shifts every chain."""

    @abc.abstractmethod
    def inject_fault(self, chains: Dict[str, List[int]], action) -> List[Injection]:
        """Manipulate the chain image according to one injection action."""

    @abc.abstractmethod
    def write_scan_chain(self, chains: Dict[str, List[int]]) -> None:
        """Shift the (possibly fault-injected) chains back in."""

    @abc.abstractmethod
    def wait_for_termination(
        self, timeout_cycles: int, max_iterations: Optional[int]
    ) -> Termination:
        """Run until a termination condition: workload end, detected
        error, time-out or iteration limit — whichever comes first."""

    # Blocks added for the pre-runtime SWIFI technique (Section 2.1: the
    # previously-undefined abstract methods a new technique needs are
    # added to the Framework class).

    @abc.abstractmethod
    def inject_fault_preruntime(self, action) -> List[Injection]:
        """Flip bits of the downloaded program/data image before start."""

    # Blocks added for the runtime SWIFI extension.

    @abc.abstractmethod
    def instrument_workload(self, plan: InjectionPlan) -> None:
        """Instrument the workload with injection code (trap planting)."""

    @abc.abstractmethod
    def collect_runtime_injections(self) -> List[Injection]:
        """Injections the instrumentation actually performed at runtime."""

    # Block added for the simulation-based baseline.

    @abc.abstractmethod
    def inject_fault_direct(self, action) -> List[Injection]:
        """Inject via direct simulator state access (full observability)."""

    # Block added for the pin-level technique (Section 2.1 names pin-level
    # fault injection as a third family the building blocks can compose).

    @abc.abstractmethod
    def force_pins(self, action) -> List[Injection]:
        """Arm boundary-scan pin forcing for the action's bus lines."""

    # Support blocks used by every algorithm.

    @abc.abstractmethod
    def location_space(self) -> LocationSpace:
        """All injectable/observable state of the configured target."""

    @abc.abstractmethod
    def capture_state_vector(self) -> StateVector:
        """Observe the campaign's observe-pattern cells (plus outputs are
        read separately via read_memory)."""

    @abc.abstractmethod
    def start_trace(self) -> None:
        """Begin collecting the reference execution trace."""

    @abc.abstractmethod
    def stop_trace(self) -> Trace:
        """Finish trace collection and return the trace."""

    @abc.abstractmethod
    def set_detail_logging(self, enabled: bool) -> None:
        """Enable per-instruction state logging (detail mode)."""

    @abc.abstractmethod
    def drain_detail_states(self) -> List[StateVector]:
        """Per-instruction states collected since the last drain."""

    @abc.abstractmethod
    def describe_target(self) -> dict:
        """Structural description stored in TargetSystemData."""

    # Optional acceleration blocks (golden-run warm starts). These are
    # *not* abstract: a port that cannot snapshot its target simply keeps
    # the defaults, the first capture attempt raises NotImplementedByPort,
    # and every experiment takes the cold start-from-reset path.

    def capture_checkpoint(self) -> CheckpointTick:
        """Snapshot the stopped target's full state (CPU registers,
        pipeline latches, caches, scan-visible state, environment
        simulator) plus the memory pages dirtied since the previous
        capture. Called by the reference run at the checkpoint cadence."""
        raise NotImplementedByPort(type(self).__name__, "capture_checkpoint")

    def restore_checkpoint(self, image: RestoreImage) -> None:
        """Load a reference-run checkpoint into the target — the warm
        equivalent of ``init_test_card + load_workload + write_memory +
        run_workload + wait_for_breakpoint(cycle)``. Must raise
        :class:`repro.core.checkpoint.CheckpointMismatch` when the
        restored state's fingerprint disagrees with the image's."""
        raise NotImplementedByPort(type(self).__name__, "restore_checkpoint")

    def start_divergence_tracking(self) -> None:
        """Arm the faulty run for divergence probing: begin tracking the
        state (dirty memory pages) that ``capture_state_digest`` must
        fold in. Called once per experiment, after the restore/cold
        prefix and before the injection loop."""
        raise NotImplementedByPort(
            type(self).__name__, "start_divergence_tracking"
        )

    def capture_state_digest(self) -> str:
        """Canonical :func:`repro.core.checkpoint.state_digest` of the
        stopped faulty target, computed exactly the way
        ``capture_checkpoint`` fingerprints the golden run — equality
        with a golden tick's fingerprint proves re-convergence. Unlike
        ``capture_checkpoint`` this must not perturb the target (no
        payload assembly, no dirty-tracking reset beyond draining)."""
        raise NotImplementedByPort(
            type(self).__name__, "capture_state_digest"
        )

    def capture_core_digest(self) -> str:
        """Optional cheap pre-filter for divergence probing: a digest
        over a strict *subset* of ``capture_state_digest``'s coverage
        (so a mismatch here proves a full mismatch). Ports that cannot
        split their state cheaply just leave this unimplemented — the
        window runner then compares full digests directly."""
        raise NotImplementedByPort(
            type(self).__name__, "capture_core_digest"
        )

    def available_workloads(self):
        """Names of the workloads this target can run, or None when the
        port does not restrict them (optional override, used by the
        set-up window to validate workload selections per target)."""
        return None

    def workload_program(self):
        """The assembled program image of the bound campaign's workload,
        or None when the port cannot provide one (optional override).

        Ports that return a :class:`repro.thor.assembler.Program` here
        unlock the *static* pre-injection oracle and the static lint
        checks (dead registers, unreachable code, dead stores); ports
        that keep the default None degrade gracefully to the trace-based
        analysis only."""
        return None

    # ------------------------------------------------------------------
    # Campaign preparation (readCampaignData + set-up interpretation)
    # ------------------------------------------------------------------

    def read_campaign_data(self, campaign: CampaignData) -> None:
        """Bind this algorithm instance to one campaign."""
        campaign.validate()
        self._check_technique_spaces(campaign)
        self.campaign = campaign
        space = self.location_space()
        space.validate_selection(campaign.location_patterns)
        self._locations = space.expand(campaign.location_patterns)
        self._fault_model = build_fault_model(campaign.fault_model)
        self._rng = CampaignRandom(campaign.seed)
        self._liveness = None
        self._equivalence = None
        # A stale reference/checkpoint store/memo table from a
        # previously bound campaign must never leak into this one (the
        # reference-run budget and the warm-start eligibility depend on
        # the former; a cold-keyed memo entry of a different workload
        # would silently corrupt outcomes through the latter).
        self._reference = None
        self._checkpoints = None
        self._memo = None

    def _check_technique_spaces(self, campaign: CampaignData) -> None:
        allowed = self.TECHNIQUE_SPACES[campaign.technique]
        for pattern in campaign.location_patterns:
            space_part = pattern.split("/", 1)[0]
            if not any(space_part.startswith(prefix) for prefix in allowed):
                raise CampaignError(
                    f"technique {campaign.technique!r} cannot reach locations "
                    f"in {pattern!r} (allowed spaces: {allowed})"
                )

    # ------------------------------------------------------------------
    # Reference run (makeReferenceRun in Figure 2)
    # ------------------------------------------------------------------

    def make_reference_run(self) -> ReferenceRun:
        campaign = self._require_campaign()
        detail = campaign.logging_mode == "detail"
        # Capture warm-start checkpoints along the reference run when the
        # campaign, logging mode and technique allow it. Detail mode is
        # excluded (detail runs log per-instruction states from cycle 0,
        # so a warm start would drop the prefix states).
        warm = (
            campaign.warm_start
            and not detail
            and campaign.technique in WARM_START_TECHNIQUES
        )
        store: Optional[CheckpointStore] = None
        with get_observability().profile(
            "reference-run",
            campaign=campaign.campaign_name,
            workload=campaign.workload_name,
        ):
            self.init_test_card()
            self.load_workload()
            self.write_memory()
            self.start_trace()
            self.set_detail_logging(detail)
            self.run_workload()
            budget = campaign.timeout_cycles or _REFERENCE_BUDGET
            termination: Optional[Termination] = None
            if warm:
                store, termination = self._capture_checkpointed_reference(
                    budget
                )
            if termination is None:
                termination = self.wait_for_termination(
                    budget, campaign.max_iterations
                )
            trace = self.stop_trace()
            self.set_detail_logging(False)
            if termination.kind not in ("halt", "max_iterations"):
                raise CampaignError(
                    "reference run did not terminate normally: "
                    f"{termination.kind} ({termination.trap_name})"
                )
            reference = ReferenceRun(
                duration_cycles=termination.cycle,
                duration_instructions=len(trace),
                termination=termination,
                state_vector=self.capture_state_vector(),
                outputs=self.read_memory(),
                trace=trace,
                detail_states=self.drain_detail_states() if detail else [],
            )
            self._install_oracles(trace)
        self._checkpoints = store
        return reference

    def _install_oracles(self, trace: Optional[Trace]) -> None:
        """Build the pre-injection/equivalence oracles from a reference
        trace. ``preinjection_mode="equivalence"`` activates the
        partitioner even when liveness pruning itself is off."""
        campaign = self._require_campaign()
        equivalence = campaign.preinjection_mode == "equivalence"
        if not (campaign.use_preinjection or equivalence):
            return
        oracle = self.build_preinjection_analysis(trace)
        if campaign.use_preinjection:
            self._liveness = oracle
        if equivalence:
            self._equivalence = oracle

    def _capture_checkpointed_reference(self, budget: int):
        """Run the reference workload to termination, pausing at the
        checkpoint cadence to snapshot target state.

        Returns ``(store, termination)``; termination is None when the
        store filled up (MAX_CHECKPOINTS) before the workload ended, in
        which case the caller finishes the run with
        ``wait_for_termination``. Returns ``(None, None)`` when the port
        does not implement the checkpoint blocks — the reference run then
        proceeds exactly as it would without warm starts."""
        campaign = self._require_campaign()
        interval = campaign.checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL
        store = CheckpointStore(context=campaign.campaign_name)
        next_stop = 0
        while len(store) < MAX_CHECKPOINTS:
            termination = self.wait_for_breakpoint(next_stop)
            if termination is not None:
                return store, termination
            try:
                tick = self.capture_checkpoint()
            except NotImplementedByPort:
                # Port cannot snapshot its target: fall back to the plain
                # reference run. The first capture attempt happens at
                # cycle 0 before any stepping, so nothing was perturbed.
                return None, None
            store.append(tick)
            next_stop = tick.cycle + interval
        return store, None

    def build_preinjection_analysis(self, trace: Optional[Trace]):
        """Construct the campaign's liveness oracle (paper Section 4).

        Dispatches on ``campaign.preinjection_mode``: ``dynamic`` builds
        the trace-based :class:`~repro.core.preinjection
        .PreInjectionAnalysis`; ``static`` the trace-free
        :class:`~repro.staticanalysis.oracle.StaticPreInjectionAnalysis`
        over the port's ``workload_program``; ``hybrid`` intersects the
        two; ``equivalence`` wraps the static oracle in the fault-space
        partitioner (:class:`~repro.staticanalysis.equivalence
        .EquivalencePreInjectionAnalysis`)."""
        campaign = self._require_campaign()
        return build_liveness_oracle(
            campaign.preinjection_mode,
            trace,
            self.location_space(),
            program=self.workload_program(),
        )

    # ------------------------------------------------------------------
    # Campaign lint (set-up phase validation)
    # ------------------------------------------------------------------

    def lint_campaign(self, reference_duration: Optional[int] = None):
        """Static validation of the bound campaign before it runs.

        Returns the list of :class:`repro.staticanalysis.lint
        .LintFinding`; the framework's ``setup_campaign`` helper turns
        error-severity findings into a :class:`CampaignError`."""
        from repro.staticanalysis.lint import lint_campaign as _lint

        campaign = self._require_campaign()
        return _lint(
            campaign,
            self.location_space(),
            program=self.workload_program(),
            reference_duration=reference_duration,
        )

    # ------------------------------------------------------------------
    # Per-experiment planning
    # ------------------------------------------------------------------

    def plan_experiment(self, index: int, reference: ReferenceRun) -> InjectionPlan:
        """Sample the (time, location) fault for experiment ``index``.

        With pre-injection analysis enabled, the (location, time) pair is
        re-sampled until the location holds live data at the injection
        time (Section 4: "injecting a fault into a location that does not
        hold live data serves no purpose").
        """
        campaign = self._require_campaign()
        assert self._fault_model is not None and self._rng is not None
        rng = self._rng.substream(index)
        duration = max(1, reference.duration_cycles)
        k = self._fault_model.locations_per_experiment()

        attempts = 0
        while True:
            times = campaign.trigger.resolve(rng, reference.trace, duration)
            chosen = (
                rng.sample(self._locations, min(k, len(self._locations)))
                if k > 1
                else [rng.choice(self._locations)]
            )
            attempts += 1
            if self._liveness is None:
                break
            if all(self._liveness.is_live(loc, times[0]) for loc in chosen):
                break
            if attempts >= 1000:
                raise CampaignError(
                    "pre-injection analysis found no live (location, time) "
                    "pair in 1000 samples; widen the location selection"
                )
        if self._liveness is not None:
            metrics = get_observability().metrics
            if metrics.enabled:
                # Prune ratio = rejected / sampled candidate pairs.
                metrics.counter("preinjection.samples_total").inc(attempts)
                metrics.counter("preinjection.rejected_total").inc(
                    attempts - 1
                )
        return self._fault_model.plan(rng, chosen, times, max_time=duration)

    # ------------------------------------------------------------------
    # Concrete fault-injection algorithms (the Figure 2 compositions)
    #
    # Each technique's per-experiment procedure is a *reentrant* method
    # (``_experiment_<technique>``): it touches only the target state that
    # ``init_test_card`` resets, so any number of experiments can be run
    # in any order — serially by ``_campaign_loop``, one-off by
    # ``run_single_experiment``, or sharded over worker processes by
    # :mod:`repro.core.parallel`.
    # ------------------------------------------------------------------

    #: technique name -> bound per-experiment procedure name (the
    #: counterpart of TECHNIQUE_METHODS for a single experiment).
    TECHNIQUE_EXPERIMENTS = {
        "scifi": "_experiment_scifi",
        "swifi-pre": "_experiment_swifi_pre",
        "swifi-runtime": "_experiment_swifi_runtime",
        "simfi": "_experiment_simfi",
        "pinlevel": "_experiment_pinlevel",
    }

    def _cold_prefix(self) -> None:
        """The cold pre-injection prefix: power-cycle, download, arm."""
        self.init_test_card()
        self.load_workload()
        self.write_memory()
        self._apply_detail_mode()
        self.run_workload()

    def _try_restore(self, plan: InjectionPlan) -> bool:
        """Warm-start the experiment from the latest reference-run
        checkpoint *strictly before* the plan's first injection time.

        Strictly before, not at-or-before: a checkpoint captured exactly
        at the injection cycle would land the restored target on the
        injection instant and skip that cycle's trigger/pre-injection
        evaluation, so the first-injection hop must always approach the
        injection time from earlier state.

        Returns True when the target is now in the restored state (the
        caller skips the cold prefix); False when no checkpoint applies
        or the restore failed its fingerprint check, in which case the
        target is untouched/garbage and the caller must take the cold
        path (which starts with ``init_test_card`` and is therefore
        always safe)."""
        store = self._checkpoints
        campaign = self._require_campaign()
        if store is None or len(store) == 0:
            return False
        if campaign.logging_mode == "detail":
            return False
        actions = plan.sorted_actions()
        if not actions:
            return False
        index = store.nearest_before(actions[0].time)
        if index is None:
            return False
        image = store.restore_image(index)
        obs = get_observability()
        try:
            with obs.profile("checkpoint.restore", cycle=image.cycle):
                self.restore_checkpoint(image)
        except (CheckpointMismatch, NotImplementedByPort):
            if obs.metrics.enabled:
                obs.metrics.counter("checkpoint.cold_falls").inc()
            return False
        if obs.metrics.enabled:
            obs.metrics.counter("checkpoint.hits").inc()
            obs.metrics.counter("checkpoint.cycles_saved").inc(image.cycle)
        return True

    @staticmethod
    def _action_chain_names(action) -> Optional[List[str]]:
        """Scan chains an injection action touches — the restricted
        read/write set for the SCIFI fast path. None when the action
        reaches outside the scan space (shift everything)."""
        names = set()
        for location in action.locations:
            if not location.space.startswith("scan:"):
                return None
            names.add(location.space.split(":", 1)[1])
        return sorted(names) or None

    def _experiment_scifi(self, index: int, plan: InjectionPlan) -> ExperimentResult:
        """One SCIFI experiment — the inner procedure of Figure 2."""
        campaign = self._require_campaign()
        obs = get_observability()
        result = self._new_result(index)
        if not self._try_restore(plan):
            self._cold_prefix()
        probing = self._begin_divergence(plan)
        termination: Optional[Termination] = None
        for action in plan.sorted_actions():
            termination = self.wait_for_breakpoint(action.time)
            if termination is not None:
                break
            names = (
                None
                if campaign.full_scan_shift
                else self._action_chain_names(action)
            )
            with obs.profile("scan.read"):
                chains = self.read_scan_chain(names)
            result.injections.extend(self.inject_fault(chains, action))
            with obs.profile("scan.write"):
                self.write_scan_chain(chains)
        self._finish_tail(result, plan, termination, probing)
        return result

    def _experiment_swifi_pre(
        self, index: int, plan: InjectionPlan
    ) -> ExperimentResult:
        """One pre-runtime SWIFI experiment: faults are injected into the
        program and data areas of the target before it starts to execute."""
        campaign = self._require_campaign()
        result = self._new_result(index)
        self.init_test_card()
        self.load_workload()
        self.write_memory()
        # Inject after the full image (program + input data) is down
        # loaded — "before it starts to execute", not before download.
        for action in plan.sorted_actions():
            result.injections.extend(self.inject_fault_preruntime(action))
        self._apply_detail_mode()
        self.run_workload()
        termination = self.wait_for_termination(
            self._experiment_budget(), campaign.max_iterations
        )
        self._finish(result, termination)
        return result

    def _experiment_swifi_runtime(
        self, index: int, plan: InjectionPlan
    ) -> ExperimentResult:
        """One runtime SWIFI experiment (Section 4 extension): the workload
        is instrumented with additional software for injecting faults."""
        campaign = self._require_campaign()
        result = self._new_result(index)
        self.init_test_card()
        self.load_workload()
        self.write_memory()
        self.instrument_workload(plan)
        self._apply_detail_mode()
        self.run_workload()
        termination = self.wait_for_termination(
            self._experiment_budget(), campaign.max_iterations
        )
        result.injections.extend(self.collect_runtime_injections())
        self._finish(result, termination)
        return result

    def _experiment_simfi(self, index: int, plan: InjectionPlan) -> ExperimentResult:
        """One simulation-based FI experiment (MEFISTO-style baseline):
        direct state access, no scan-chain serialization."""
        campaign = self._require_campaign()
        result = self._new_result(index)
        if not self._try_restore(plan):
            self._cold_prefix()
        probing = self._begin_divergence(plan)
        termination: Optional[Termination] = None
        for action in plan.sorted_actions():
            termination = self.wait_for_breakpoint(action.time)
            if termination is not None:
                break
            result.injections.extend(self.inject_fault_direct(action))
        self._finish_tail(result, plan, termination, probing)
        return result

    def _experiment_pinlevel(
        self, index: int, plan: InjectionPlan
    ) -> ExperimentResult:
        """One pin-level experiment through boundary scan: stop at the
        injection instant, arm EXTEST forcing of the selected bus lines,
        resume — the forced lines corrupt the next read transactions."""
        campaign = self._require_campaign()
        result = self._new_result(index)
        if not self._try_restore(plan):
            self._cold_prefix()
        probing = self._begin_divergence(plan)
        termination: Optional[Termination] = None
        for action in plan.sorted_actions():
            termination = self.wait_for_breakpoint(action.time)
            if termination is not None:
                break
            result.injections.extend(self.force_pins(action))
        self._finish_tail(result, plan, termination, probing)
        return result

    def fault_injector_scifi(self, campaign, sink=None, control=None,
                             _fixed_plans=None, skip_indices=None):
        """Scan-Chain Implemented Fault Injection — the algorithm of
        Figure 2, step for step."""
        return self._campaign_loop(campaign, sink, control,
                                   _fixed_plans=_fixed_plans,
                                   skip_indices=skip_indices)

    def fault_injector_swifi_pre(self, campaign, sink=None, control=None,
                                 _fixed_plans=None, skip_indices=None):
        """Pre-runtime SWIFI: faults are injected into the program and
        data areas of the target before it starts to execute."""
        return self._campaign_loop(campaign, sink, control,
                                   _fixed_plans=_fixed_plans,
                                   skip_indices=skip_indices)

    def fault_injector_swifi_runtime(self, campaign, sink=None, control=None,
                                     _fixed_plans=None, skip_indices=None):
        """Runtime SWIFI (Section 4 extension): the workload is
        instrumented with additional software for injecting faults."""
        return self._campaign_loop(campaign, sink, control,
                                   _fixed_plans=_fixed_plans,
                                   skip_indices=skip_indices)

    def fault_injector_simfi(self, campaign, sink=None, control=None,
                             _fixed_plans=None, skip_indices=None):
        """Simulation-based FI baseline (MEFISTO-style): direct state
        access, no scan-chain serialization."""
        return self._campaign_loop(campaign, sink, control,
                                   _fixed_plans=_fixed_plans,
                                   skip_indices=skip_indices)

    def fault_injector_pinlevel(self, campaign, sink=None, control=None,
                                _fixed_plans=None, skip_indices=None):
        """Pin-level fault injection through boundary scan: stop at the
        injection instant, arm EXTEST forcing of the selected bus lines,
        resume — the forced lines corrupt the next read transactions."""
        return self._campaign_loop(campaign, sink, control,
                                   _fixed_plans=_fixed_plans,
                                   skip_indices=skip_indices)

    # ------------------------------------------------------------------
    # Reentrant single-experiment building block
    # ------------------------------------------------------------------

    def prepare_run(self, campaign, golden=None) -> ReferenceRun:
        """Bind ``campaign`` and perform the reference run — everything a
        runner (serial loop, parallel worker, re-run helper) needs before
        it can call :meth:`run_single_experiment`. Returns the reference
        run (also retained on the instance for budget derivation).

        ``golden`` optionally supplies a pre-computed
        :class:`repro.core.goldencache.GoldenRun` (reference run +
        checkpoint store) — the parallel runner hands workers the
        parent's golden run so each worker skips its own reference
        execution. When :attr:`golden_cache` is set, the golden run is
        also looked up/stored on disk keyed by the campaign's config
        hash, so repeated ``goofi run`` invocations of an unchanged
        campaign skip the reference run entirely."""
        self.read_campaign_data(campaign)
        cache = self.golden_cache
        key = None
        if golden is not None or cache is not None:
            from repro.core.goldencache import campaign_golden_key

            # Key is computed after read_campaign_data: port bindings may
            # resolve symbolic trigger fields, and the key must reflect
            # what will actually run.
            key = campaign_golden_key(campaign)
        obs = get_observability()
        if golden is not None and self._adopt_golden(golden, key):
            if obs.metrics.enabled:
                obs.metrics.counter("goldencache.shared_hits").inc()
            return self._reference
        if cache is not None:
            cached = cache.load(key)
            if cached is not None and self._adopt_golden(cached, key):
                if obs.metrics.enabled:
                    obs.metrics.counter("goldencache.hits").inc()
                return self._reference
            if obs.metrics.enabled:
                obs.metrics.counter("goldencache.misses").inc()
        reference = self.make_reference_run()
        self._reference = reference
        if cache is not None and key is not None:
            from repro.core.goldencache import GoldenRun

            cache.store(
                GoldenRun(
                    config_hash=key,
                    target_name=campaign.target_name,
                    reference=reference,
                    checkpoints=self._checkpoints,
                )
            )
        return reference

    def _adopt_golden(self, golden, key: Optional[str]) -> bool:
        """Install a shared/cached golden run on this instance. Returns
        False (adopt nothing) when the golden run's config hash does not
        match this campaign's — a stale cache entry must never shortcut
        a different campaign."""
        campaign = self._require_campaign()
        if golden is None or key is None or golden.config_hash != key:
            return False
        if golden.target_name != campaign.target_name:
            return False
        self._reference = golden.reference
        self._checkpoints = golden.checkpoints
        self._install_oracles(golden.reference.trace)
        return True

    def run_single_experiment(
        self,
        index: int,
        plan: Optional[InjectionPlan] = None,
        reference: Optional[ReferenceRun] = None,
        use_memo: bool = True,
    ) -> ExperimentResult:
        """Plan and execute exactly one experiment of the bound campaign.

        This is the reentrant unit the campaign loop iterates and the
        parallel runner ships to worker processes: given the same campaign
        binding and reference run, experiment ``index`` produces the same
        result no matter which process runs it or in which order, because
        the injection plan is drawn from the index-keyed RNG substream and
        the target is reinitialised by the experiment procedure itself.

        That same determinism powers the outcome memo: two experiments of
        one campaign binding that would restore the same checkpoint (or
        both start cold) and inject the identical action list are the
        same computation, so the second replays the first's recorded
        outcome instead of executing. ``use_memo=False`` forces real
        execution (the equivalence verifier uses it — a verification that
        replays a memo would verify nothing).

        ``plan`` overrides the sampled plan (the re-run mechanism);
        ``reference`` defaults to the instance's retained reference run
        from :meth:`prepare_run`."""
        campaign = self._require_campaign()
        if reference is None:
            reference = getattr(self, "_reference", None)
        if reference is None:
            raise CampaignError(
                "run_single_experiment needs a reference run; call "
                "prepare_run() first or pass reference="
            )
        if plan is None:
            plan = self.plan_experiment(index, reference)
        obs = get_observability()
        memo = self._memo_table() if use_memo else None
        key: Optional[str] = None
        if memo is not None:
            key = memo_key(self._restore_digest(plan), plan)
            entry = memo.lookup(key)
            if entry is not None:
                started = _time.perf_counter()
                result = self._new_result(index)
                entry.apply(result)
                result.wall_seconds = _time.perf_counter() - started
                if obs.metrics.enabled:
                    obs.metrics.counter("divergence.memo_hits").inc()
                obs.metrics.counter("experiments_total").inc()
                return result
        procedure = getattr(self, self.TECHNIQUE_EXPERIMENTS[campaign.technique])
        started = _time.perf_counter()
        with obs.profile(
            "experiment",
            campaign=campaign.campaign_name,
            index=index,
            technique=campaign.technique,
        ):
            result = procedure(index, plan)
        result.wall_seconds = _time.perf_counter() - started
        obs.metrics.counter("experiments_total").inc()
        if memo is not None and key is not None and result.termination is not None:
            memo.record(key, MemoEntry.from_result(result))
            if obs.metrics.enabled:
                obs.metrics.counter("divergence.memo_inserts").inc()
        return result

    def run_campaign(self, campaign, sink=None, control=None,
                     skip_indices=None):
        """Dispatch to the technique the campaign selected.

        ``skip_indices`` supports resuming an interrupted campaign:
        experiments whose index is in the set are not re-run (their
        results are already in the sink); because every experiment draws
        its fault from an index-keyed RNG substream, the remaining
        experiments inject exactly what they would have in the original
        run."""
        method = getattr(self, self.TECHNIQUE_METHODS[campaign.technique])
        return method(campaign, sink=sink, control=control,
                      skip_indices=skip_indices)

    # ------------------------------------------------------------------
    # Fault-list preview (set-up phase aid)
    # ------------------------------------------------------------------

    def preview_fault_list(self, campaign: CampaignData, count: int = 10):
        """The first ``count`` experiments' planned faults, without
        injecting anything.

        Performs the reference run (plans are trigger- and
        liveness-dependent), then resolves each experiment's injection
        plan exactly as the campaign run would — the preview is
        guaranteed to match what ``run_campaign`` later injects, because
        both draw from the same index-keyed RNG substreams.
        """
        self.read_campaign_data(campaign)
        reference = self.make_reference_run()
        self._reference = reference
        previews = []
        for index in range(min(count, campaign.n_experiments)):
            plan = self.plan_experiment(index, reference)
            previews.append(
                {
                    "index": index,
                    "actions": [
                        {
                            "time": action.time,
                            "op": action.op,
                            "locations": [
                                location.key() for location in action.locations
                            ],
                        }
                        for action in plan.sorted_actions()
                    ],
                }
            )
        return previews

    # ------------------------------------------------------------------
    # Re-run with provenance (the parentExperiment mechanism of Figure 4)
    # ------------------------------------------------------------------

    def rerun_experiment(
        self,
        campaign: CampaignData,
        index: int,
        sink=None,
        logging_mode: str = "detail",
    ) -> ExperimentResult:
        """Re-run experiment ``index`` of ``campaign`` — typically in
        detail mode to analyse an interesting result — producing a new
        experiment whose ``parent_experiment`` names the original."""
        detail_campaign = campaign.modified(logging_mode=logging_mode)
        parent_name = self.experiment_name(campaign.campaign_name, index)
        sink = sink if sink is not None else _ListSink()
        self.read_campaign_data(detail_campaign)
        reference = self.make_reference_run()
        sink.log_reference(detail_campaign, reference)
        plan = self.plan_experiment(index, reference)
        runner = {
            "scifi": self.fault_injector_scifi,
            "swifi-pre": self.fault_injector_swifi_pre,
            "swifi-runtime": self.fault_injector_swifi_runtime,
            "simfi": self.fault_injector_simfi,
            "pinlevel": self.fault_injector_pinlevel,
        }
        # Run just this one experiment through the technique's inner
        # experiment procedure by making a single-experiment campaign and
        # reusing the substream of the original index so the same fault is
        # injected.
        single = detail_campaign.modified(n_experiments=1)
        outer = runner[single.technique]
        results = outer(
            single,
            sink=_ListSink(),
            control=None,
            _fixed_plans={0: plan},
        )
        result = results.results[0]
        result.name = f"{parent_name}-rerun"
        result.parent_experiment = parent_name
        sink.log_experiment(detail_campaign, result)
        return result

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def experiment_name(campaign_name: str, index: int) -> str:
        return f"{campaign_name}-exp{index:05d}"

    def _require_campaign(self) -> CampaignData:
        if self.campaign is None:
            raise CampaignError("read_campaign_data() has not been called")
        return self.campaign

    def _new_result(self, index: int) -> ExperimentResult:
        campaign = self._require_campaign()
        return ExperimentResult(
            name=self.experiment_name(campaign.campaign_name, index),
            index=index,
            campaign_name=campaign.campaign_name,
        )

    def _apply_detail_mode(self) -> None:
        campaign = self._require_campaign()
        self.set_detail_logging(campaign.logging_mode == "detail")

    def _experiment_budget(self) -> int:
        campaign = self._require_campaign()
        if campaign.timeout_cycles is not None:
            return campaign.timeout_cycles
        reference = getattr(self, "_reference", None)
        if reference is None:
            return _REFERENCE_BUDGET
        return int(reference.duration_cycles * campaign.timeout_factor) + 1

    def _finish(self, result: ExperimentResult, termination: Termination) -> None:
        campaign = self._require_campaign()
        result.termination = termination
        result.outputs = self.read_memory()
        result.state_vector = self.capture_state_vector()
        if campaign.logging_mode == "detail":
            result.detail_states = self.drain_detail_states()
            self.set_detail_logging(False)

    # ------------------------------------------------------------------
    # Divergence-window execution + outcome memoization
    # ------------------------------------------------------------------

    def _begin_divergence(self, plan: InjectionPlan) -> bool:
        """Arm divergence probing for one experiment, if it can pay off.

        Probing needs early-exit enabled, a checkpointed reference run
        with at least one golden tick strictly after the last injection
        action and strictly before the reference termination (otherwise
        there is no tail to skip), summary logging (detail mode must
        observe every instruction of the real tail), and a port that
        implements the tracking block. Returns whether probing is armed;
        False always means "run the plain tail", never an error."""
        if not self.early_exit:
            return False
        campaign = self._require_campaign()
        if campaign.logging_mode == "detail":
            return False
        store = self._checkpoints
        reference = getattr(self, "_reference", None)
        if store is None or len(store) == 0 or reference is None:
            return False
        actions = plan.sorted_actions()
        if not actions:
            return False
        start = store.first_after(actions[-1].time)
        if start is None:
            return False
        if store.tick(start).cycle >= reference.duration_cycles:
            return False
        try:
            self.start_divergence_tracking()
        except NotImplementedByPort:
            return False
        return True

    def _finish_tail(
        self,
        result: ExperimentResult,
        plan: InjectionPlan,
        termination: Optional[Termination],
        probing: bool,
    ) -> None:
        """Complete a stop-and-inject experiment after its injection
        loop: probe the divergence window when armed (synthesizing the
        golden outcome on re-convergence), otherwise — or when probing
        stays inconclusive — run the plain tail to termination."""
        campaign = self._require_campaign()
        if termination is None and probing:
            window = run_window(self, plan, self._reference, self._checkpoints)
            if window.converged:
                self._finish_golden(result)
                return
            termination = window.termination
        if termination is None:
            termination = self.wait_for_termination(
                self._experiment_budget(), campaign.max_iterations
            )
        self._finish(result, termination)

    def _finish_golden(self, result: ExperimentResult) -> None:
        """Fill ``result`` with the golden run's outcome — the faulty
        run's state digest matched a golden tick, so its future is the
        golden future and its final termination/outputs/state vector are
        the reference run's, byte for byte. Fresh copies, never aliases:
        results outlive the experiment and are mutated downstream."""
        reference = self._reference
        assert reference is not None
        result.termination = Termination.from_dict(
            reference.termination.to_dict()
        )
        result.outputs = dict(reference.outputs)
        result.state_vector = dict(reference.state_vector)

    def _memo_table(self) -> Optional[OutcomeMemo]:
        """The campaign-scoped outcome memo, or None when memoization
        does not apply (disabled, or detail mode — a replayed outcome
        has no per-instruction states to drain)."""
        if not self.memoize:
            return None
        campaign = self._require_campaign()
        if campaign.logging_mode == "detail":
            return None
        if self._memo is None:
            self._memo = OutcomeMemo()
        return self._memo

    def _restore_digest(self, plan: InjectionPlan) -> Optional[str]:
        """Fingerprint of the checkpoint this plan's experiment would
        warm-restore, or None (= the cold sentinel) when the experiment
        starts from reset — mirroring :meth:`_try_restore`'s eligibility
        exactly, so the memo key names the true starting state."""
        campaign = self._require_campaign()
        store = self._checkpoints
        if store is None or len(store) == 0:
            return None
        if not campaign.warm_start:
            return None
        if campaign.technique not in WARM_START_TECHNIQUES:
            return None
        actions = plan.sorted_actions()
        if not actions:
            return None
        index = store.nearest_before(actions[0].time)
        if index is None:
            return None
        return store.tick(index).fingerprint

    def _campaign_loop(self, campaign, sink, control,
                       _fixed_plans: Optional[dict] = None,
                       skip_indices=None):
        sink = sink if sink is not None else _ListSink()
        control = control if control is not None else _NullControl()
        skip = frozenset(skip_indices or ())
        obs = get_observability()
        with obs.profile(
            "campaign",
            campaign=campaign.campaign_name,
            technique=campaign.technique,
            n_experiments=campaign.n_experiments,
            mode="serial",
        ):
            reference = self.prepare_run(campaign)
            sink.log_reference(campaign, reference)
            plans: Optional[Dict[int, InjectionPlan]] = None
            derived_of: Dict[int, int] = {}
            # Representative results retained only while derived members
            # of their class are still pending (bounded memory).
            rep_results: Dict[int, ExperimentResult] = {}
            pending: Dict[int, int] = {}
            if self._collapse_enabled(campaign):
                plans = {}
                for index in range(campaign.n_experiments):
                    if index in skip:
                        continue
                    fixed = (
                        _fixed_plans.get(index)
                        if _fixed_plans is not None
                        else None
                    )
                    plans[index] = (
                        fixed
                        if fixed is not None
                        else self.plan_experiment(index, reference)
                    )
                partition = self._equivalence.partition(plans)
                self._record_partition_metrics(partition)
                derived_of = partition.derived_map()
                for rep in derived_of.values():
                    pending[rep] = pending.get(rep, 0) + 1
            for index in range(campaign.n_experiments):
                if index in skip:
                    continue
                try:
                    control.checkpoint(index)
                except StopCampaign:
                    break
                rep = derived_of.get(index)
                if rep is not None and rep in rep_results:
                    assert plans is not None
                    result = self._derive_result(
                        index, plans[index], rep_results[rep]
                    )
                    if self._should_verify(index):
                        self._verify_derived(
                            index, plans[index], result, reference
                        )
                    pending[rep] -= 1
                    if pending[rep] == 0:
                        del rep_results[rep]
                else:
                    # Representatives, singletons, and members whose
                    # representative did not run (resumed campaigns can
                    # skip it) execute for real.
                    if plans is not None:
                        plan: Optional[InjectionPlan] = plans[index]
                    elif _fixed_plans is not None:
                        plan = _fixed_plans.get(index)
                    else:
                        plan = None
                    result = self.run_single_experiment(
                        index, plan=plan, reference=reference
                    )
                    if pending.get(index):
                        rep_results[index] = result
                sink.log_experiment(campaign, result)
                control.report(index, result)
        obs.flush()
        return sink

    # ------------------------------------------------------------------
    # Equivalence collapsing (preinjection_mode="equivalence")
    # ------------------------------------------------------------------

    def _collapse_enabled(self, campaign: CampaignData) -> bool:
        """May this campaign's experiments be collapsed?

        Detail mode is excluded: per-instruction state logs differ
        *inside* an unobserved def-use region (the flipped bit shows up
        in detail states before anything architectural reads it), so
        only terminal outcomes — not detail logs — are class-invariant.
        """
        return (
            self._equivalence is not None
            and campaign.technique in EQUIVALENCE_TECHNIQUES
            and campaign.logging_mode != "detail"
        )

    def _record_partition_metrics(self, partition) -> None:
        stats = partition.stats()
        metrics = get_observability().metrics
        if metrics.enabled:
            metrics.counter("equivalence.classes").inc(stats.n_classes)
            metrics.counter("equivalence.executed").inc(stats.n_executed)
            metrics.counter("equivalence.collapsed").inc(stats.n_derived)

    def _derive_result(
        self,
        index: int,
        plan: InjectionPlan,
        rep_result: ExperimentResult,
    ) -> ExperimentResult:
        """Statically-derived outcome of a non-representative member.

        Everything observable at termination is copied from the executed
        representative — that is the equivalence theorem. The injection
        record keeps the *member's* own injection time (the flipped
        value is class-invariant: no write to the location happens
        between the two injection instants).
        """
        result = self._new_result(index)
        result.derived_from = rep_result.name
        times = [action.time for action in plan.sorted_actions()]
        for i, injection in enumerate(rep_result.injections):
            result.injections.append(
                Injection(
                    time=times[i] if i < len(times) else injection.time,
                    location=injection.location,
                    op=injection.op,
                    bit_before=injection.bit_before,
                    bit_after=injection.bit_after,
                )
            )
        assert rep_result.termination is not None
        result.termination = Termination.from_dict(
            rep_result.termination.to_dict()
        )
        result.outputs = dict(rep_result.outputs)
        result.state_vector = dict(rep_result.state_vector)
        result.wall_seconds = 0.0
        return result

    def _should_verify(self, index: int) -> bool:
        fraction = self.verify_equivalence
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        campaign = self._require_campaign()
        # Index-keyed stream, disjoint from the planning substreams.
        return (
            random.Random(f"{campaign.seed}:verify:{index}").random()
            < fraction
        )

    def _verify_derived(
        self,
        index: int,
        plan: InjectionPlan,
        derived: ExperimentResult,
        reference: ReferenceRun,
    ) -> None:
        """Force-execute a derived member and hard-fail on divergence.
        The memo is bypassed: replaying a memoized outcome would compare
        a copy against a copy and verify nothing."""
        actual = self.run_single_experiment(
            index, plan=plan, reference=reference, use_memo=False
        )
        self.check_derived_outcome(index, actual, derived)

    def check_derived_outcome(
        self,
        index: int,
        actual: ExperimentResult,
        derived: ExperimentResult,
    ) -> None:
        """Compare a real execution against its static derivation and
        hard-fail the campaign on any divergence (the ``--verify-
        equivalence`` contract; also used by the parallel runner, which
        executes verify members on workers)."""
        mismatches = []
        if [i.to_dict() for i in actual.injections] != [
            i.to_dict() for i in derived.injections
        ]:
            mismatches.append("injections")
        actual_term = actual.termination.to_dict() if actual.termination else None
        derived_term = (
            derived.termination.to_dict() if derived.termination else None
        )
        if actual_term != derived_term:
            mismatches.append("termination")
        if actual.outputs != derived.outputs:
            mismatches.append("outputs")
        if actual.state_vector != derived.state_vector:
            mismatches.append("state_vector")
        if mismatches:
            raise CampaignError(
                f"equivalence verification failed for experiment {index} "
                f"(derived from {derived.derived_from}): "
                f"{', '.join(mismatches)} diverged — the static "
                "equivalence certificate is unsound for this class"
            )
        metrics = get_observability().metrics
        if metrics.enabled:
            metrics.counter("equivalence.verified").inc()
