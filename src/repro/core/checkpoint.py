"""Golden-run checkpointing: warm-start state snapshots (dirty-page store).

GOOFI's Figure-2 building blocks re-execute every experiment from reset
and single-step the target to the injection instant, so a campaign of N
experiments pays N full pre-injection prefixes even though the
pre-injection trajectory is — by construction — identical to the golden
(reference) run. Fast-forwarding to the injection point instead of
re-simulating the prefix is the core speed trick of ZOFI (Porpodas,
2019) and of gem5 checkpoint-restore workflows; this module provides the
target-independent half of that trick:

* :class:`CheckpointTick` — what a port's ``capture_checkpoint()``
  building block returns: a full snapshot of the small state (CPU
  registers, pipeline latches, cache arrays, traps, scan-chain image,
  environment-simulator state) plus **only the memory pages dirtied
  since the previous checkpoint**;
* :class:`CheckpointStore` — an append-only store of ticks along the
  reference run. Memory is delta-encoded: each tick stores full page
  images only for pages that changed, and :meth:`CheckpointStore.
  restore_image` reconstructs the cumulative page set for any checkpoint
  by replaying the deltas in order (later deltas win). A 1000-checkpoint
  store over a workload that touches a handful of pages therefore stays
  bounded by *pages touched*, not *checkpoints × address space*;
* :func:`state_digest` — a canonical structural hash used as the
  restore fingerprint: a port recomputes the digest over its live state
  after a restore and falls back to a cold start on any mismatch
  (:class:`CheckpointMismatch`), so warm starts can never silently
  diverge from the cold path.

The per-experiment RNG substreams (:class:`repro.util.rng.
CampaignRandom`) are derived from ``(seed, index)`` and never advanced
across experiments, so RNG state needs no capture: experiment *i* draws
the same fault whether its prefix was simulated or restored.
"""

from __future__ import annotations

import hashlib
from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import CampaignError

__all__ = [
    "CHECKPOINT_FORMAT",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "MAX_CHECKPOINTS",
    "PAGE_WORDS",
    "CheckpointMismatch",
    "CheckpointStore",
    "CheckpointTick",
    "RestoreImage",
    "state_digest",
]

#: Version of the checkpoint payload/fingerprint layout. Bumped whenever
#: what a tick captures (or how its fingerprint is computed) changes, so
#: persisted golden runs from an older layout miss cleanly instead of
#: tripping restore-time mismatches. v2: fingerprints cover the full CPU
#: snapshot (pipeline force flags, last-executed-instruction record) in
#: addition to the scan-visible cells, making digest equality total with
#: respect to future execution — the divergence-window soundness
#: requirement. v3: bulk payloads (memory pages, cache arrays, scan-chain
#: captures) travel as typed ``array`` buffers hashed via ``tobytes`` —
#: a different canonical encoding than the v2 int-list walk, so v2
#: stores miss cleanly through the golden-cache key.
CHECKPOINT_FORMAT = 3

#: Words per memory page in the dirty-page delta encoding (2^8 words —
#: small enough that a sparse workload dirties few pages, large enough
#: that the page table stays tiny for a 64Ki-word address space).
PAGE_WORDS = 256

#: Default capture cadence along the reference run, in target cycles.
#: The expected fast-forward saving per experiment is ~interval/2 cycles
#: of re-simulation; 512 keeps the store small while bounding the warm
#: prefix replay to at most one interval.
DEFAULT_CHECKPOINT_INTERVAL = 512

#: Hard cap on checkpoints per reference run, so a pathological cadence
#: against a long workload cannot exhaust memory. Past the cap the
#: reference run simply stops capturing and runs to termination.
MAX_CHECKPOINTS = 1024


class CheckpointMismatch(CampaignError):
    """A restored target's fingerprint disagrees with the checkpoint's.

    Raised by a port's ``restore_checkpoint()`` when the recomputed
    :func:`state_digest` over the live post-restore state does not match
    the digest captured along the reference run. The algorithm layer
    treats this as a *cold fall*: the experiment silently restarts from
    reset, trading speed for guaranteed fidelity.
    """


def state_digest(parts: Any) -> str:
    """Canonical sha256 digest of a nested structure of plain state.

    Accepts ``None``, bools, ints, strings, bytes, typed ``array``
    buffers, lists/tuples and dicts (keys sorted, so insertion order
    never leaks into the fingerprint). Typed arrays — the dominant
    payload since checkpoint format v3: memory pages, cache data words,
    scan-chain captures — are hashed zero-copy via ``tobytes``; integer
    lists still take a packed fast path. Every node is type-tagged so
    e.g. ``0`` and ``False`` and ``""`` cannot collide.
    """
    digest = hashlib.sha256()
    _feed(digest, parts)
    return digest.hexdigest()


def _feed(digest: "hashlib._Hash", obj: Any) -> None:
    if obj is None:
        digest.update(b"\x00N")
    elif isinstance(obj, bool):
        digest.update(b"\x00b1" if obj else b"\x00b0")
    elif isinstance(obj, int):
        digest.update(b"\x00I")
        digest.update(str(obj).encode("ascii"))
    elif isinstance(obj, str):
        digest.update(b"\x00S")
        digest.update(obj.encode("utf-8"))
    elif isinstance(obj, bytes):
        digest.update(b"\x00B")
        digest.update(obj)
    elif isinstance(obj, array):
        # Zero-copy path: the buffer is fed to the hash directly. The
        # typecode is part of the tag so e.g. array("I") and array("Q")
        # holding equal values stay distinct, mirroring the type-tagging
        # of every other node.
        digest.update(b"\x00A")
        digest.update(obj.typecode.encode("ascii"))
        digest.update(str(len(obj)).encode("ascii"))
        digest.update(obj.tobytes())
    elif isinstance(obj, (list, tuple)):
        digest.update(b"\x00L")
        digest.update(str(len(obj)).encode("ascii"))
        if obj and all(type(item) is int for item in obj):
            digest.update(b"A")
            digest.update(array("q", obj).tobytes())
        else:
            for item in obj:
                _feed(digest, item)
    elif isinstance(obj, dict):
        digest.update(b"\x00D")
        digest.update(str(len(obj)).encode("ascii"))
        for key in sorted(obj):
            _feed(digest, key)
            _feed(digest, obj[key])
    else:
        raise TypeError(
            f"state_digest cannot hash {type(obj).__name__!r} values"
        )


@dataclass
class CheckpointTick:
    """One captured snapshot along the reference run.

    ``payload`` holds the small dense state (whatever the port's
    ``capture_checkpoint`` decides: CPU scalars, cache arrays, pickled
    environment-simulator blob, memory-protection range …) — it is
    stored in full at every tick. ``dirty_pages`` maps page index to the
    page's full word image, and contains **only pages written since the
    previous tick** (for the first tick: every page that is non-zero or
    was written since reset). ``fingerprint`` is the
    :func:`state_digest` the port computed over the live state at
    capture time; restores verify against it. ``core_fingerprint`` is an
    optional cheap digest over a strict *subset* of the fingerprinted
    state (for Thor: the CPU core without memory pages or scan chains) —
    the divergence-window runner compares it first and only pays the
    full-state digest once the cores already agree, since a subset
    mismatch proves a full mismatch (checkpoint format v2).
    """

    cycle: int
    payload: Dict[str, Any]
    dirty_pages: Dict[int, Sequence[int]] = field(default_factory=dict)
    fingerprint: str = ""
    core_fingerprint: str = ""


@dataclass
class RestoreImage:
    """What a port's ``restore_checkpoint()`` receives: the checkpoint's
    dense payload plus the *cumulative* page set reconstructed by
    replaying the dirty-page deltas of every tick up to and including
    the chosen one. Pages absent from ``pages`` were never written and
    are all-zero by the reset contract."""

    cycle: int
    payload: Dict[str, Any]
    pages: Dict[int, Sequence[int]]
    fingerprint: str = ""


class CheckpointStore:
    """Append-only store of checkpoints along one reference run.

    Cycles must be appended in strictly increasing order (the reference
    run only moves forward); :meth:`nearest` then resolves "the latest
    checkpoint at or before injection time *t*" with a bisect, and
    :meth:`restore_image` materialises the cumulative memory image for a
    checkpoint by replaying the dirty-page deltas in capture order.
    """

    def __init__(self, context: str = "", page_words: int = PAGE_WORDS):
        if page_words <= 0:
            raise CampaignError("page_words must be positive")
        self.context = context
        self.page_words = page_words
        self._cycles: List[int] = []
        self._ticks: List[CheckpointTick] = []

    def __len__(self) -> int:
        return len(self._ticks)

    @property
    def cycles(self) -> List[int]:
        return list(self._cycles)

    def append(self, tick: CheckpointTick) -> None:
        if self._cycles and tick.cycle <= self._cycles[-1]:
            raise CampaignError(
                f"checkpoint cycles must increase: {tick.cycle} after "
                f"{self._cycles[-1]}"
            )
        for page, words in tick.dirty_pages.items():
            if len(words) != self.page_words:
                raise CampaignError(
                    f"page {page} has {len(words)} words, "
                    f"expected {self.page_words}"
                )
        self._cycles.append(tick.cycle)
        self._ticks.append(tick)

    def tick(self, index: int) -> CheckpointTick:
        return self._ticks[index]

    def nearest(self, cycle: int) -> Optional[int]:
        """Index of the latest checkpoint with ``tick.cycle <= cycle``,
        or None when the store is empty or every tick is later."""
        position = bisect_right(self._cycles, cycle) - 1
        return position if position >= 0 else None

    def nearest_before(self, cycle: int) -> Optional[int]:
        """Index of the latest checkpoint with ``tick.cycle < cycle``
        (strictly before), or None when no tick qualifies.

        This is the warm-restore lookup: restoring a checkpoint captured
        *at* the injection cycle would land the target on the injection
        instant and skip that cycle's trigger/pre-injection evaluation,
        so restores must approach the injection time from strictly
        earlier state."""
        position = bisect_left(self._cycles, cycle) - 1
        return position if position >= 0 else None

    def first_after(self, cycle: int) -> Optional[int]:
        """Index of the earliest checkpoint with ``tick.cycle > cycle``
        (strictly after), or None when every tick is at or before. The
        divergence-window runner uses this to find the first golden tick
        worth probing once injection is done."""
        position = bisect_right(self._cycles, cycle)
        return position if position < len(self._cycles) else None

    def restore_image(self, index: int) -> RestoreImage:
        """Reconstruct the cumulative restore image for checkpoint
        ``index`` by replaying dirty-page deltas 0..index (later deltas
        win, exactly mirroring the write order along the reference
        run)."""
        if not 0 <= index < len(self._ticks):
            raise CampaignError(f"no checkpoint at index {index}")
        pages: Dict[int, Sequence[int]] = {}
        for tick in self._ticks[: index + 1]:
            pages.update(tick.dirty_pages)
        chosen = self._ticks[index]
        return RestoreImage(
            cycle=chosen.cycle,
            payload=chosen.payload,
            pages=pages,
            fingerprint=chosen.fingerprint,
        )

    # -- accounting (docs, benchmarks, progress reporting) -----------------

    def stats(self) -> Dict[str, int]:
        """Size accounting: checkpoints, delta pages stored, distinct
        pages ever dirtied, and delta-encoded words held."""
        delta_pages = sum(len(t.dirty_pages) for t in self._ticks)
        unique: set = set()
        for tick in self._ticks:
            unique.update(tick.dirty_pages)
        return {
            "checkpoints": len(self._ticks),
            "delta_pages": delta_pages,
            "unique_pages": len(unique),
            "delta_words": delta_pages * self.page_words,
        }

    def span(self) -> Tuple[int, int]:
        """(first, last) captured cycle; (0, 0) when empty."""
        if not self._cycles:
            return (0, 0)
        return (self._cycles[0], self._cycles[-1])
