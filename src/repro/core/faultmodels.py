"""Fault models and injection plans.

The shipped GOOFI supports "single or multiple transient bit-flip faults";
Section 4 announces intermittent and permanent faults as extensions. All
three are implemented here. A fault model does not touch the target
itself — it produces an :class:`InjectionPlan`, a schedule of
:class:`InjectionAction` items that the fault-injection algorithm realises
through the target interface's building blocks (stop at time t, read
state, apply operation, write state). That split keeps fault models
technique-agnostic: the same plan drives SCIFI, runtime SWIFI and the
simulation baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.locations import FaultLocation
from repro.util.errors import ConfigurationError

OP_FLIP = "flip"
OP_STUCK0 = "stuck0"
OP_STUCK1 = "stuck1"
_VALID_OPS = (OP_FLIP, OP_STUCK0, OP_STUCK1)


@dataclass(frozen=True)
class InjectionAction:
    """Apply ``op`` to each location at (simulated) cycle ``time``."""

    time: int
    locations: tuple
    op: str = OP_FLIP

    def __post_init__(self):
        if self.op not in _VALID_OPS:
            raise ConfigurationError(f"unknown injection op {self.op!r}")
        if self.time < 0:
            raise ConfigurationError(f"injection time must be >= 0, got {self.time}")


@dataclass
class InjectionPlan:
    """The full schedule for one experiment, sorted by time."""

    actions: List[InjectionAction] = field(default_factory=list)

    def sorted_actions(self) -> List[InjectionAction]:
        return sorted(self.actions, key=lambda a: a.time)

    @property
    def times(self) -> List[int]:
        return [a.time for a in self.sorted_actions()]

    def all_locations(self) -> List[FaultLocation]:
        out: List[FaultLocation] = []
        for action in self.actions:
            out.extend(action.locations)
        return out


class FaultModel:
    """Base class: builds an injection plan for one experiment."""

    kind = "abstract"

    def plan(
        self,
        rng: random.Random,
        locations: Sequence[FaultLocation],
        times: Sequence[int],
        max_time: int,
    ) -> InjectionPlan:
        """Build the plan given the trigger-resolved candidate ``times``
        (usually a single injection instant) and the sampled ``locations``."""
        raise NotImplementedError

    def locations_per_experiment(self) -> int:
        """How many distinct locations one experiment needs sampled."""
        return 1


class TransientBitFlip(FaultModel):
    """Single or multiple simultaneous transient bit flips (the shipped
    GOOFI fault model)."""

    kind = "transient"

    def __init__(self, multiplicity: int = 1):
        if multiplicity < 1:
            raise ConfigurationError(
                f"multiplicity must be >= 1, got {multiplicity}"
            )
        self.multiplicity = multiplicity

    def locations_per_experiment(self) -> int:
        return self.multiplicity

    def plan(self, rng, locations, times, max_time):
        if not times:
            raise ConfigurationError("transient fault needs one injection time")
        chosen = tuple(locations[: self.multiplicity])
        return InjectionPlan([InjectionAction(time=times[0], locations=chosen)])


class IntermittentBitFlip(FaultModel):
    """A burst of transient flips in the same location (Section 4
    extension). ``burst_length`` flips separated by ``burst_spacing``
    cycles, starting at the trigger time."""

    kind = "intermittent"

    def __init__(self, burst_length: int = 3, burst_spacing: int = 50):
        if burst_length < 1:
            raise ConfigurationError(
                f"burst_length must be >= 1, got {burst_length}"
            )
        if burst_spacing < 1:
            raise ConfigurationError(
                f"burst_spacing must be >= 1, got {burst_spacing}"
            )
        self.burst_length = burst_length
        self.burst_spacing = burst_spacing

    def plan(self, rng, locations, times, max_time):
        if not times:
            raise ConfigurationError("intermittent fault needs a start time")
        location = (locations[0],)
        actions = []
        for i in range(self.burst_length):
            t = times[0] + i * self.burst_spacing
            if t > max_time:
                break
            actions.append(InjectionAction(time=t, locations=location))
        return InjectionPlan(actions)


class StuckAt(FaultModel):
    """Permanent stuck-at fault (Section 4 extension).

    A scan-chain injector cannot hold a node continuously, so the stuck
    value is re-asserted at every re-assertion interval — the standard
    SCIFI approximation of a permanent fault. The first assertion happens
    at the trigger time; re-assertions follow every ``reassert_interval``
    cycles until the experiment's time budget.
    """

    kind = "permanent"

    def __init__(self, stuck_value: int = 0, reassert_interval: int = 200):
        if stuck_value not in (0, 1):
            raise ConfigurationError(
                f"stuck_value must be 0 or 1, got {stuck_value}"
            )
        if reassert_interval < 1:
            raise ConfigurationError(
                f"reassert_interval must be >= 1, got {reassert_interval}"
            )
        self.stuck_value = stuck_value
        self.reassert_interval = reassert_interval

    def plan(self, rng, locations, times, max_time):
        if not times:
            raise ConfigurationError("stuck-at fault needs a start time")
        location = (locations[0],)
        op = OP_STUCK1 if self.stuck_value else OP_STUCK0
        actions = []
        t = times[0]
        while t <= max_time:
            actions.append(InjectionAction(time=t, locations=location, op=op))
            t += self.reassert_interval
        if not actions:
            actions.append(
                InjectionAction(time=times[0], locations=location, op=op)
            )
        return InjectionPlan(actions)


def build_fault_model(spec: "FaultModelSpec") -> FaultModel:  # noqa: F821
    """Instantiate a fault model from a campaign's declarative spec."""
    kind = spec.kind
    if kind == "transient":
        return TransientBitFlip(multiplicity=spec.multiplicity)
    if kind == "intermittent":
        return IntermittentBitFlip(
            burst_length=spec.burst_length, burst_spacing=spec.burst_spacing
        )
    if kind == "permanent":
        return StuckAt(
            stuck_value=spec.stuck_value,
            reassert_interval=spec.reassert_interval,
        )
    raise ConfigurationError(f"unknown fault model kind {kind!r}")


def apply_op(value_bit: int, op: str) -> int:
    """Apply one injection operation to a single bit value."""
    if op == OP_FLIP:
        return value_bit ^ 1
    if op == OP_STUCK0:
        return 0
    if op == OP_STUCK1:
        return 1
    raise ConfigurationError(f"unknown injection op {op!r}")
