"""Divergence-window execution and outcome memoization.

A fault-injection experiment differs from the golden (reference) run
only inside its *divergence window*: the fault-free prefix is identical
by construction (PR 5's warm starts exploit that end), and once the
fault's architectural effect has been overwritten the faulty run's
state re-converges with the golden run's — from that instant the two
executions are the same execution, so simulating the faulty tail just
recomputes the golden outcome. ZOFI (Porpodas, 2019) builds its whole
speedup on this observation; this module provides the
target-independent half of it for GOOFI's building-block algorithms:

* :func:`run_window` — after the last injection action, run the faulty
  target forward in hops of the reference run's checkpoint cadence and
  compare its canonical :func:`~repro.core.checkpoint.state_digest`
  against the golden :class:`~repro.core.checkpoint.CheckpointStore`
  tick at the same cycle. A digest match proves re-convergence (the
  fingerprint is total over everything future execution can read:
  registers, pipeline latches incl. force flags, caches, bus forcing,
  run counters, cumulative dirty memory pages, environment simulator),
  so the experiment's outcome *is* the golden outcome and the tail is
  skipped. Any mismatch — including a faulty run that dirtied pages the
  golden run never touched — just means "keep simulating": false
  negatives cost speed, never correctness.

* :class:`OutcomeMemo` — a per-campaign memo table keyed by
  ``(restore checkpoint digest, canonical injection delta)``. Two
  experiments that restore the same checkpoint (or both start cold) and
  inject the identical action list are the *same* deterministic
  computation, so the second one's outcome can be replayed from the
  first's record byte-for-byte. The parallel runner ships newly recorded
  entries to the parent with each shard's ``"done"`` message and
  forwards the merged table to workers on dispatch — the same
  parent-side merge topology as the golden-run cache.

Both features are observable through the ``divergence.*`` metrics
family (``early_exits``, ``cycles_skipped``, ``memo_hits``, plus
``probes`` and ``memo_inserts`` for rate diagnostics) and are disabled
by ``goofi run --no-early-exit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import state_digest
from repro.core.experiment import (
    ExperimentResult,
    Injection,
    ReferenceRun,
    Termination,
)
from repro.observability import get_observability
from repro.util.errors import NotImplementedByPort

__all__ = [
    "COLD_RESTORE_KEY",
    "MemoEntry",
    "OutcomeMemo",
    "WindowOutcome",
    "memo_key",
    "plan_delta",
    "run_window",
]

#: Restore-digest sentinel for experiments that start from reset rather
#: than from a checkpoint (cold path, SWIFI techniques, empty stores).
COLD_RESTORE_KEY = "cold"


# ---------------------------------------------------------------------------
# Memo keys
# ---------------------------------------------------------------------------

def plan_delta(plan: Any) -> List[Dict[str, Any]]:
    """Canonical form of an injection plan's action list — the
    "injection delta" half of the memo key. Locations are reduced to
    their stable string keys and actions kept in execution order, so two
    plans that inject the same bits at the same instants canonicalise
    identically no matter how they were sampled."""
    return [
        {
            "time": action.time,
            "op": action.op,
            "locations": sorted(
                location.key() for location in action.locations
            ),
        }
        for action in plan.sorted_actions()
    ]


def memo_key(restore_digest: Optional[str], plan: Any) -> str:
    """Memo-table key for one experiment: the fingerprint of the
    checkpoint its warm restore would load (:data:`COLD_RESTORE_KEY`
    when it starts from reset) combined with the canonical injection
    delta. Everything else an outcome depends on — workload, fault
    model, budgets — is fixed per campaign binding, and the memo table
    never outlives one binding."""
    return state_digest(
        {
            "restore": restore_digest or COLD_RESTORE_KEY,
            "actions": plan_delta(plan),
        }
    )


# ---------------------------------------------------------------------------
# Memo table
# ---------------------------------------------------------------------------

@dataclass
class MemoEntry:
    """Everything needed to replay a completed experiment's outcome onto
    a fresh :class:`ExperimentResult` byte-for-byte (modulo the
    legitimately nondeterministic wall-clock field)."""

    termination: Dict[str, Any]
    outputs: Dict[str, int]
    state_vector: Dict[str, int]
    injections: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: ExperimentResult) -> "MemoEntry":
        assert result.termination is not None
        return cls(
            termination=result.termination.to_dict(),
            outputs=dict(result.outputs),
            state_vector=dict(result.state_vector),
            injections=[inj.to_dict() for inj in result.injections],
        )

    def apply(self, result: ExperimentResult) -> None:
        """Fill ``result`` with this entry's outcome (fresh copies — a
        memo entry is shared across experiments and processes)."""
        result.termination = Termination.from_dict(dict(self.termination))
        result.outputs = dict(self.outputs)
        result.state_vector = dict(self.state_vector)
        result.injections = [
            Injection.from_dict(row) for row in self.injections
        ]

    def to_row(self) -> Dict[str, Any]:
        return {
            "termination": dict(self.termination),
            "outputs": dict(self.outputs),
            "state_vector": dict(self.state_vector),
            "injections": [dict(row) for row in self.injections],
        }

    @classmethod
    def from_row(cls, row: Dict[str, Any]) -> "MemoEntry":
        return cls(
            termination=dict(row["termination"]),
            outputs=dict(row["outputs"]),
            state_vector=dict(row["state_vector"]),
            injections=[dict(item) for item in row["injections"]],
        )


class OutcomeMemo:
    """Insertion-ordered memo table of experiment outcomes.

    Serial campaigns use only :meth:`lookup` / :meth:`record`. The
    parallel runner additionally moves entries between processes as
    plain ``{"key": ..., "entry": ...}`` rows: workers
    :meth:`drain_new` their own recordings into each shard's ``"done"``
    message, the parent :meth:`merge`\\ s them (merged rows are *not*
    re-drained, so entries never echo back and forth), and
    :meth:`rows_since` gives the parent a per-worker forwarding cursor
    over the global insertion order."""

    def __init__(self) -> None:
        self._entries: Dict[str, MemoEntry] = {}
        self._order: List[str] = []
        self._new: List[str] = []
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[MemoEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def record(self, key: str, entry: MemoEntry) -> None:
        """Insert a locally computed outcome (marked for draining)."""
        if key in self._entries:
            return
        self._entries[key] = entry
        self._order.append(key)
        self._new.append(key)

    def merge(self, rows: List[Dict[str, Any]]) -> int:
        """Adopt rows recorded elsewhere (parent or sibling workers);
        returns how many were new. Merged rows do not mark as new."""
        added = 0
        for row in rows:
            key = row["key"]
            if key in self._entries:
                continue
            self._entries[key] = MemoEntry.from_row(row["entry"])
            self._order.append(key)
            added += 1
        return added

    def drain_new(self) -> List[Dict[str, Any]]:
        """Rows recorded locally since the previous drain."""
        fresh = self._new
        self._new = []
        return [
            {"key": key, "entry": self._entries[key].to_row()}
            for key in fresh
        ]

    def rows_since(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        """Rows appended after ``cursor`` plus the advanced cursor —
        the parent's dispatch-time forwarding window for one worker."""
        rows = [
            {"key": key, "entry": self._entries[key].to_row()}
            for key in self._order[cursor:]
        ]
        return rows, len(self._order)


# ---------------------------------------------------------------------------
# Divergence-window execution
# ---------------------------------------------------------------------------

@dataclass
class WindowOutcome:
    """What probing the divergence window established.

    Exactly one of three shapes:

    * ``converged=True`` — the faulty run's digest matched the golden
      tick at ``cycle``; the caller synthesizes the golden outcome and
      skips the tail (``cycles_skipped`` were not simulated);
    * ``termination`` set — the experiment really ended (trap, halt,
      timeout, iteration limit) while running toward a probe cycle; the
      caller finishes normally with it;
    * neither — probes exhausted (or the port cannot digest); the
      caller falls through to the plain run-to-termination tail.
    """

    converged: bool = False
    cycle: int = 0
    cycles_skipped: int = 0
    termination: Optional[Termination] = None


def run_window(
    port: Any,
    plan: Any,
    reference: ReferenceRun,
    store: Any,
) -> WindowOutcome:
    """Probe the post-injection window against the golden checkpoints.

    ``port`` is the bound algorithm instance: probing composes its
    ``wait_for_breakpoint`` building block (the same stop-at-cycle hop
    the injection loop uses — stop checks precede timeout checks, so
    splitting the tail into hops perturbs nothing) with the optional
    ``capture_state_digest`` block. Golden ticks strictly after the last
    injection action and strictly before the reference termination are
    candidates; the first digest match wins.

    Probing every candidate tick would spend one full-state digest per
    checkpoint interval on experiments that never re-converge — measured
    on the Thor workloads that overhead cancels the exit wins. Observed
    convergence is strongly bimodal: either the fault is overwritten
    almost immediately (first tick after injection) or the state snaps
    back only in the workload epilogue. The probe schedule matches that
    shape — geometric backoff over the candidate ticks (offsets 0, 1, 3,
    7, 15, ...) plus always the final candidate — bounding the digest
    cost at O(log ticks) per experiment while catching both modes. A
    skipped tick can only delay an exit to the next probed one; it never
    changes an outcome."""
    actions = plan.sorted_actions()
    if not actions:
        return WindowOutcome()
    start = store.first_after(actions[-1].time)
    if start is None:
        return WindowOutcome()
    candidates = []
    for index in range(start, len(store)):
        if store.tick(index).cycle >= reference.duration_cycles:
            break
        candidates.append(index)
    if not candidates:
        return WindowOutcome()
    probed = []
    offset = 0
    while offset < len(candidates):
        probed.append(candidates[offset])
        offset = offset * 2 + 1
    if probed[-1] != candidates[-1]:
        probed.append(candidates[-1])
    obs = get_observability()
    metrics = obs.metrics
    for index in probed:
        tick = store.tick(index)
        termination = port.wait_for_breakpoint(tick.cycle)
        if termination is not None:
            return WindowOutcome(termination=termination)
        if metrics.enabled:
            metrics.counter("divergence.probes").inc()
        if tick.core_fingerprint:
            # Cheap rejection: the core digest covers a subset of the
            # full fingerprint, so a mismatch proves divergence without
            # hashing memory pages and scan chains.
            try:
                if port.capture_core_digest() != tick.core_fingerprint:
                    continue
            except NotImplementedByPort:
                pass
        try:
            digest = port.capture_state_digest()
        except NotImplementedByPort:
            return WindowOutcome()
        if metrics.enabled:
            metrics.counter("divergence.full_digests").inc()
        if digest == tick.fingerprint:
            skipped = reference.duration_cycles - tick.cycle
            if metrics.enabled:
                metrics.counter("divergence.early_exits").inc()
                metrics.counter("divergence.cycles_skipped").inc(skipped)
            obs.tracer.event(
                "divergence-exit",
                cycle=tick.cycle,
                cycles_skipped=skipped,
            )
            return WindowOutcome(
                converged=True, cycle=tick.cycle, cycles_skipped=skipped
            )
    return WindowOutcome()
