"""Campaign controller: run control and live progress (Figure 7).

"During the fault injection campaign, a progress window is shown enabling
the user to monitor the experiments, e.g. getting information about the
number of faults injected and also to pause, restart or end the campaign."

The controller wraps a fault-injection algorithm run with exactly those
affordances: progress listeners receive a :class:`CampaignProgress`
snapshot after every experiment, and :meth:`pause` / :meth:`resume` /
:meth:`stop` work both from another thread and from inside a progress
listener (cooperative, checked between experiments).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.algorithms import FaultInjectionAlgorithms, StopCampaign
from repro.core.campaign import CampaignData
from repro.core.experiment import ExperimentResult
from repro.util.errors import CampaignError


@dataclass
class CampaignProgress:
    """Snapshot rendered by the progress window."""

    campaign_name: str = ""
    n_total: int = 0
    n_done: int = 0
    n_injected_faults: int = 0
    terminations: Dict[str, int] = field(default_factory=dict)
    detections: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    state: str = "idle"

    @property
    def experiments_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_done / self.elapsed_seconds

    @property
    def percent_done(self) -> float:
        if self.n_total == 0:
            return 0.0
        return 100.0 * self.n_done / self.n_total


ProgressListener = Callable[[CampaignProgress], None]


class CampaignController:
    """Run a campaign with pause/restart/end control and progress events."""

    def __init__(self, algorithm: FaultInjectionAlgorithms, sink=None):
        self.algorithm = algorithm
        self.sink = sink
        self.progress = CampaignProgress()
        self._listeners: List[ProgressListener] = []
        self._resume_event = threading.Event()
        self._resume_event.set()
        self._stop_requested = False
        self._started_at = 0.0

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: ProgressListener) -> None:
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self.progress)

    # -- run control (the progress-window buttons) ------------------------------

    def pause(self) -> None:
        self._resume_event.clear()
        self.progress.state = "paused"

    def resume(self) -> None:
        self.progress.state = "running"
        self._resume_event.set()

    def stop(self) -> None:
        self._stop_requested = True
        self._resume_event.set()

    @property
    def paused(self) -> bool:
        return not self._resume_event.is_set()

    # -- hooks called by the algorithm's campaign loop ----------------------------

    def checkpoint(self, index: int) -> None:
        if self._stop_requested:
            self.progress.state = "stopped"
            raise StopCampaign()
        # Cooperative pause: wait in short slices so stop() still works.
        while not self._resume_event.wait(timeout=0.05):
            if self._stop_requested:
                self.progress.state = "stopped"
                raise StopCampaign()

    def report(self, index: int, result: ExperimentResult) -> None:
        progress = self.progress
        progress.n_done += 1
        progress.n_injected_faults += len(result.injections)
        termination = result.termination
        if termination is not None:
            progress.terminations[termination.kind] = (
                progress.terminations.get(termination.kind, 0) + 1
            )
            if termination.kind == "trap" and termination.trap_name:
                progress.detections[termination.trap_name] = (
                    progress.detections.get(termination.trap_name, 0) + 1
                )
        progress.elapsed_seconds = time.perf_counter() - self._started_at
        self._notify()

    # -- campaign execution ---------------------------------------------------------

    def run(self, campaign: CampaignData, resume: bool = False):
        """Run the campaign to completion (or until stopped).

        With ``resume=True`` and a sink that knows which experiments are
        already logged (the GOOFI database does), previously completed
        experiments are skipped — restarting an interrupted campaign
        picks up exactly where it stopped, injecting the same faults the
        skipped indices would not have re-drawn."""
        if self.progress.state == "running":
            raise CampaignError("controller is already running a campaign")
        skip_indices = None
        if resume:
            if self.sink is None or not hasattr(self.sink, "completed_indices"):
                raise CampaignError(
                    "resume needs a sink that records completed experiments"
                )
            skip_indices = set(
                self.sink.completed_indices(campaign.campaign_name)
            )
        self.progress = CampaignProgress(
            campaign_name=campaign.campaign_name,
            n_total=campaign.n_experiments,
            n_done=len(skip_indices or ()),
            state="running",
        )
        self._stop_requested = False
        self._resume_event.set()
        self._started_at = time.perf_counter()
        self._notify()
        sink = self.algorithm.run_campaign(
            campaign, sink=self.sink, control=self, skip_indices=skip_indices
        )
        if self.progress.state != "stopped":
            self.progress.state = "finished"
        self.progress.elapsed_seconds = time.perf_counter() - self._started_at
        self._notify()
        return sink

    def run_in_thread(self, campaign: CampaignData) -> threading.Thread:
        """Start the campaign on a worker thread (the GUI mode of
        operation); returns the thread, results flow into the sink."""
        thread = threading.Thread(
            target=self.run, args=(campaign,), name=f"campaign-{campaign.campaign_name}"
        )
        thread.start()
        return thread
