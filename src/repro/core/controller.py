"""Campaign controller: run control and live progress (Figure 7).

"During the fault injection campaign, a progress window is shown enabling
the user to monitor the experiments, e.g. getting information about the
number of faults injected and also to pause, restart or end the campaign."

The controller wraps a fault-injection algorithm run with exactly those
affordances: progress listeners receive a :class:`CampaignProgress`
snapshot after every experiment, and :meth:`pause` / :meth:`resume` /
:meth:`stop` work both from another thread and from inside a progress
listener (cooperative, checked between experiments).

Timing contract: ``elapsed_seconds`` counts *active* campaign time only —
time spent paused is accumulated separately and subtracted, so
``experiments_per_second`` reflects real throughput rather than how long
the operator left the campaign paused.

Execution is pluggable: :meth:`run` owns state transitions (including the
``"failed"`` state when the algorithm raises) and resume bookkeeping,
while the actual experiment loop lives in :meth:`_execute`. The serial
controller delegates to the algorithm's campaign loop; the parallel
controller in :mod:`repro.core.parallel` overrides ``_execute`` with a
multiprocessing pool while inheriting every Figure-7 affordance.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.algorithms import FaultInjectionAlgorithms, StopCampaign
from repro.core.campaign import CampaignData
from repro.core.experiment import ExperimentResult
from repro.observability import get_observability
from repro.observability.health import (
    NULL_HEALTH,
    CampaignHealthMonitor,
    set_health,
)
from repro.util.errors import CampaignError


@dataclass
class CampaignProgress:
    """Snapshot rendered by the progress window."""

    campaign_name: str = ""
    n_total: int = 0
    n_done: int = 0
    n_injected_faults: int = 0
    terminations: Dict[str, int] = field(default_factory=dict)
    detections: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    state: str = "idle"
    #: Number of worker processes executing experiments (1 = serial).
    n_workers: int = 1
    #: Experiments that exhausted their watchdog retries and were logged
    #: with a ``worker-failure`` termination (parallel runner only).
    n_worker_failures: int = 0
    #: Estimated seconds to completion from the health monitor's latency
    #: EWMA (``None`` when no health monitor is attached yet).
    eta_seconds: Optional[float] = None
    #: Experiments whose outcome was statically derived from an executed
    #: equivalence-class representative rather than executed itself
    #: (``preinjection_mode="equivalence"``).
    n_derived: int = 0

    @property
    def experiments_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_done / self.elapsed_seconds

    @property
    def percent_done(self) -> float:
        if self.n_total == 0:
            return 0.0
        return 100.0 * self.n_done / self.n_total


ProgressListener = Callable[[CampaignProgress], None]


class CampaignController:
    """Run a campaign with pause/restart/end control and progress events."""

    def __init__(self, algorithm: Optional[FaultInjectionAlgorithms], sink=None):
        self.algorithm = algorithm
        self.sink = sink
        self.progress = CampaignProgress()
        #: Live health monitor for the current run (no-op singleton when
        #: observability is disabled — one truth test per call site).
        self.health: CampaignHealthMonitor = NULL_HEALTH
        #: RunMeta provenance row id of the current run (sinks that
        #: implement ``record_run_start`` only).
        self.run_id: Optional[int] = None
        #: Extra provenance forwarded to ``record_run_start`` (the
        #: campaign fabric tags runs with ``job_id``/``tenant``). Left
        #: empty, the sink call is byte-for-byte what it always was.
        self.run_tags: Dict[str, str] = {}
        self._listeners: List[ProgressListener] = []
        self._resume_event = threading.Event()
        self._resume_event.set()
        self._stop_requested = False
        self._started_at = 0.0
        self._paused_seconds = 0.0

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: ProgressListener) -> None:
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self.progress)

    # -- run control (the progress-window buttons) ------------------------------

    def pause(self) -> None:
        self._resume_event.clear()
        self.progress.state = "paused"
        self.health.notify_paused()
        self._state_event("paused")

    def resume(self) -> None:
        """Restart a paused campaign.

        A no-op after :meth:`stop`: once the End button was pressed the
        campaign is ending, and resuming must not flip the state back to
        ``"running"`` (the stop still wins at the next checkpoint)."""
        if self._stop_requested:
            return
        self.progress.state = "running"
        self.health.notify_resumed()
        self._state_event("running")
        self._resume_event.set()

    def stop(self) -> None:
        self._stop_requested = True
        self._state_event("stopping")
        self._resume_event.set()

    def _state_event(self, state: str) -> None:
        """Emit a campaign-state trace event (no-op when tracing is off)."""
        get_observability().tracer.event(
            "campaign-state",
            campaign=self.progress.campaign_name,
            state=state,
        )

    @property
    def paused(self) -> bool:
        return not self._resume_event.is_set()

    # -- timing ------------------------------------------------------------------

    def _elapsed(self) -> float:
        """Active campaign time: wall time minus accumulated pause time."""
        return time.perf_counter() - self._started_at - self._paused_seconds

    def add_pause_time(self, seconds: float) -> None:
        """Credit externally measured pause time (used by executors that
        implement their own cooperative pause loop, e.g. the parallel
        runner, so paused time never pollutes the throughput figure)."""
        self._paused_seconds += max(0.0, seconds)

    # -- hooks called by the algorithm's campaign loop ----------------------------

    def checkpoint(self, index: int) -> None:
        if self._stop_requested:
            self.progress.state = "stopped"
            raise StopCampaign()
        if self._resume_event.is_set():
            return
        # Cooperative pause: wait in short slices so stop() still works.
        # Whatever time is spent here is pause time, not campaign time.
        pause_started = time.perf_counter()
        try:
            while not self._resume_event.wait(timeout=0.05):
                if self._stop_requested:
                    self.progress.state = "stopped"
                    raise StopCampaign()
        finally:
            self._paused_seconds += time.perf_counter() - pause_started

    def report(self, index: int, result: ExperimentResult) -> None:
        progress = self.progress
        progress.n_done += 1
        self._tally(progress, result)
        progress.elapsed_seconds = self._elapsed()
        if self.health.enabled:
            termination = result.termination
            self.health.record_result(
                termination.kind if termination is not None else None
            )
            progress.eta_seconds = self.health.eta_seconds()
            self.health.check()
        metrics = get_observability().metrics
        if metrics.enabled:
            metrics.gauge("campaign.n_done").set(progress.n_done)
            metrics.gauge("campaign.elapsed_seconds").set(
                progress.elapsed_seconds
            )
            metrics.gauge("campaign.experiments_per_second").set(
                progress.experiments_per_second
            )
            if progress.eta_seconds is not None:
                metrics.gauge("campaign.eta_seconds").set(
                    progress.eta_seconds
                )
        self._notify()

    @staticmethod
    def _tally(progress: CampaignProgress, result: ExperimentResult) -> None:
        """Fold one experiment's outcome into the running counters (shared
        by live reporting and the resume-time rebuild from the sink)."""
        progress.n_injected_faults += len(result.injections)
        if result.derived_from is not None:
            progress.n_derived += 1
        termination = result.termination
        if termination is not None:
            progress.terminations[termination.kind] = (
                progress.terminations.get(termination.kind, 0) + 1
            )
            if termination.kind == "trap" and termination.trap_name:
                progress.detections[termination.trap_name] = (
                    progress.detections.get(termination.trap_name, 0) + 1
                )
            if termination.kind == "worker-failure":
                progress.n_worker_failures += 1

    # -- campaign execution ---------------------------------------------------------

    def run(self, campaign: CampaignData, resume: bool = False):
        """Run the campaign to completion (or until stopped).

        With ``resume=True`` and a sink that knows which experiments are
        already logged (the GOOFI database does), previously completed
        experiments are skipped — restarting an interrupted campaign
        picks up exactly where it stopped, injecting the same faults the
        skipped indices would not have re-drawn. The progress counters
        (injected faults, terminations, detections) are rebuilt from the
        sink so post-resume breakdowns include the pre-interruption
        experiments.

        If the underlying algorithm raises, the controller transitions to
        the ``"failed"`` state (never stuck in ``"running"``) and the
        exception propagates; a later :meth:`run` is allowed again."""
        if self.progress.state == "running":
            raise CampaignError("controller is already running a campaign")
        skip_indices = None
        if resume:
            if self.sink is None or not hasattr(self.sink, "completed_indices"):
                raise CampaignError(
                    "resume needs a sink that records completed experiments"
                )
            skip_indices = set(
                self.sink.completed_indices(campaign.campaign_name)
            )
        self.progress = CampaignProgress(
            campaign_name=campaign.campaign_name,
            n_total=campaign.n_experiments,
            n_done=len(skip_indices or ()),
            state="running",
        )
        if skip_indices:
            self._rebuild_counters(campaign, skip_indices)
        self._stop_requested = False
        self._resume_event.set()
        self._started_at = time.perf_counter()
        self._paused_seconds = 0.0
        obs = get_observability()
        if obs.enabled:
            # Live telemetry: a fresh health monitor per run, installed
            # process-globally so the exporter's /healthz sees it.
            self.health = CampaignHealthMonitor()
            self.health.begin(
                campaign.campaign_name,
                n_total=campaign.n_experiments,
                n_workers=self._planned_workers(),
            )
            set_health(self.health)
        else:
            self.health = NULL_HEALTH
        self.run_id = self._record_run_start(campaign)
        self._notify()
        try:
            sink = self._execute(campaign, skip_indices)
        except Exception:
            # Never leave the controller stuck in "running": a crashed
            # campaign must not make every later run() raise "already
            # running a campaign".
            self.progress.state = "failed"
            self.progress.elapsed_seconds = self._elapsed()
            obs.flightrec.dump(
                "unhandled-exception", campaign=campaign.campaign_name
            )
            self._record_run_end("failed")
            self._notify()
            raise
        if self.progress.state != "stopped":
            self.progress.state = "finished"
        self.progress.elapsed_seconds = self._elapsed()
        self._record_run_end(self.progress.state)
        self._notify()
        return sink

    # -- run provenance (RunMeta, sinks that support it) --------------------

    def _planned_workers(self) -> int:
        """Worker processes this controller will use (1 = serial);
        overridden by the parallel controller."""
        return 1

    def _record_run_start(self, campaign: CampaignData) -> Optional[int]:
        record_start = getattr(self.sink, "record_run_start", None)
        if not callable(record_start):
            return None
        kwargs: Dict[str, object] = {"n_workers": self._planned_workers()}
        kwargs.update(self.run_tags)
        return record_start(campaign, **kwargs)

    def _record_run_end(self, state: str) -> None:
        if self.run_id is None:
            return
        record_end = getattr(self.sink, "record_run_end", None)
        if not callable(record_end):
            return
        metrics = get_observability().metrics
        snapshot = metrics.snapshot() if metrics.enabled else None
        record_end(
            self.run_id,
            state,
            metrics_snapshot=snapshot,
            n_workers=self.progress.n_workers,
        )

    def _execute(self, campaign: CampaignData, skip_indices):
        """Run the experiment loop; overridden by parallel executors."""
        if self.algorithm is None:
            raise CampaignError("controller has no algorithm to run")
        return self.algorithm.run_campaign(
            campaign, sink=self.sink, control=self, skip_indices=skip_indices
        )

    def _rebuild_counters(self, campaign: CampaignData, skip_indices) -> None:
        """Rebuild fault/termination/detection counters from the sink's
        already-logged experiments so a resumed campaign's breakdowns are
        not silently reset to zero."""
        results = self._logged_results(campaign)
        if results is None:
            return
        for result in results:
            if result.parent_experiment is not None:
                continue  # re-runs are provenance children, not campaign rows
            if result.index not in skip_indices:
                continue
            self._tally(self.progress, result)

    def _logged_results(self, campaign: CampaignData):
        sink = self.sink
        if sink is None:
            return None
        if hasattr(sink, "load_experiments"):
            return sink.load_experiments(campaign.campaign_name)
        if hasattr(sink, "results"):
            return sink.results
        return None

    def run_in_thread(
        self, campaign: CampaignData, resume: bool = False
    ) -> threading.Thread:
        """Start the campaign on a worker thread (the GUI mode of
        operation); returns the thread, results flow into the sink.
        ``resume`` is forwarded to :meth:`run` so an interrupted GUI
        campaign can be restarted without re-running logged experiments."""
        thread = threading.Thread(
            target=self.run,
            args=(campaign,),
            kwargs={"resume": resume},
            name=f"campaign-{campaign.campaign_name}",
        )
        thread.start()
        return thread
