"""Execution traces of the reference run.

Fault triggers (inject at the n-th branch, at an access to a data value,
…) and the pre-injection liveness analysis both work on a trace of the
*fault-free* reference execution. The trace format is target-agnostic:
each step records control flow, memory traffic and register dataflow in
abstract terms, so the core algorithms never import target-specific code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TraceStep:
    """One executed instruction of the reference run."""

    index: int
    pc: int
    cycle_before: int
    cycle_after: int
    is_branch: bool = False
    branch_taken: bool = False
    is_call: bool = False
    mem_address: Optional[int] = None
    mem_value: Optional[int] = None
    mem_is_write: bool = False
    reg_reads: Tuple[int, ...] = ()
    reg_writes: Tuple[int, ...] = ()
    reads_flags: bool = False
    writes_flags: bool = False


@dataclass
class Trace:
    """The full reference trace plus convenience queries."""

    steps: List[TraceStep] = field(default_factory=list)

    def append(self, step: TraceStep) -> None:
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def duration_cycles(self) -> int:
        return self.steps[-1].cycle_after if self.steps else 0

    def branch_steps(self) -> List[TraceStep]:
        return [s for s in self.steps if s.is_branch]

    def call_steps(self) -> List[TraceStep]:
        return [s for s in self.steps if s.is_call]

    def accesses_to(self, address: int) -> List[TraceStep]:
        return [s for s in self.steps if s.mem_address == address]

    def executions_of(self, pc: int) -> List[TraceStep]:
        return [s for s in self.steps if s.pc == pc]

    def step_at_cycle(self, cycle: int) -> Optional[TraceStep]:
        """First step whose execution completes at or after ``cycle``."""
        for step in self.steps:
            if step.cycle_after >= cycle:
                return step
        return None

    def step_after_cycle(self, cycle: int) -> Optional[TraceStep]:
        """The instruction that executes once the target stops at
        ``cycle``: the first step whose execution *begins* at or after
        that instant. This is where a runtime injector must plant its
        trap to fire at the same point a stop-at-cycle breakpoint would."""
        for step in self.steps:
            if step.cycle_before >= cycle:
                return step
        return None
