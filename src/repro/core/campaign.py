"""Campaign data: everything needed to conduct a fault-injection campaign.

This mirrors the paper's ``CampaignData`` database table: target system,
workload, fault locations, fault model, number of experiments, injection
trigger, termination conditions, logging mode and environment-simulator
binding. The set-up phase (Section 3.2) creates these records; the
fault-injection phase replays them. Campaign data is a plain declarative
value object — (de)serializable to JSON for storage in the database.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.triggers import TriggerSpec
from repro.util.errors import ConfigurationError


@dataclass
class FaultModelSpec:
    """Declarative fault-model description (see repro.core.faultmodels)."""

    kind: str = "transient"  # "transient" | "intermittent" | "permanent"
    multiplicity: int = 1
    burst_length: int = 3
    burst_spacing: int = 50
    stuck_value: int = 0
    reassert_interval: int = 200

    VALID_KINDS = ("transient", "intermittent", "permanent")

    def __post_init__(self):
        if self.kind not in self.VALID_KINDS:
            raise ConfigurationError(f"unknown fault model kind {self.kind!r}")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "FaultModelSpec":
        return FaultModelSpec(**data)


@dataclass
class EnvironmentSpec:
    """Binding to a user-provided environment simulator (Section 3.2):
    which simulator program to use and the memory windows for the data
    exchange at each loop iteration."""

    name: str = ""
    params: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "EnvironmentSpec":
        return EnvironmentSpec(**data)


@dataclass
class CampaignData:
    """One row of the CampaignData table, as a typed object."""

    campaign_name: str
    target_name: str = "thor-rd"
    technique: str = "scifi"
    workload_name: str = "bubblesort"
    workload_params: Dict[str, int] = field(default_factory=dict)
    location_patterns: List[str] = field(
        default_factory=lambda: ["scan:internal/cpu.regfile.*"]
    )
    fault_model: FaultModelSpec = field(default_factory=FaultModelSpec)
    trigger: TriggerSpec = field(default_factory=TriggerSpec)
    n_experiments: int = 100
    seed: int = 1
    # Termination conditions: cycle budget (None = derived from the
    # reference run) and, for infinite-loop workloads, the maximum number
    # of loop iterations before the experiment is terminated.
    timeout_cycles: Optional[int] = None
    timeout_factor: float = 3.0
    max_iterations: Optional[int] = None
    logging_mode: str = "normal"  # "normal" | "detail"
    observe_patterns: List[str] = field(
        default_factory=lambda: [
            "scan:internal/cpu.regfile.*",
            "scan:internal/cpu.pc",
            "scan:internal/cpu.psr",
        ]
    )
    environment: Optional[EnvironmentSpec] = None
    use_preinjection: bool = False
    # How the pre-injection liveness oracle is built when
    # use_preinjection is set: from the reference trace ("dynamic"), from
    # static CFG/liveness analysis of the program image ("static" — no
    # trace needed), the intersection of both ("hybrid"), or static
    # analysis plus def-use equivalence collapsing ("equivalence": plans
    # exactly like "static" but executes one experiment per provable
    # equivalence class and derives the rest).
    preinjection_mode: str = "dynamic"
    # Optional software EDM: write-protect the workload's code image so
    # fault-induced wild stores into code are detected instead of
    # silently corrupting instructions.
    protect_code: bool = False
    # Golden-run warm starts: capture checkpoints along the reference
    # run and restore the nearest one at or before the first injection
    # time instead of re-simulating the pre-injection prefix. Applies to
    # scifi/simfi/pinlevel on ports implementing the checkpoint blocks;
    # detail-mode runs and the SWIFI techniques always take the cold
    # path. Warm and cold runs are byte-identical (property-tested), so
    # this is on by default.
    warm_start: bool = True
    # Capture cadence along the reference run, in target cycles; None
    # uses repro.core.checkpoint.DEFAULT_CHECKPOINT_INTERVAL.
    checkpoint_interval: Optional[int] = None
    # Fidelity knob for SCIFI scan access: shift *all* scan chains on
    # every injection action (the paper's literal read-modify-write of
    # the whole serialized state) instead of only the chains the action
    # touches. Outcomes are identical either way — untouched chains
    # round-trip unchanged — only the scan-cycle accounting differs.
    full_scan_shift: bool = False

    VALID_TECHNIQUES = (
        "scifi", "swifi-pre", "swifi-runtime", "simfi", "pinlevel"
    )
    VALID_LOGGING = ("normal", "detail")

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if not self.campaign_name:
            raise ConfigurationError("campaign_name must not be empty")
        if self.technique not in self.VALID_TECHNIQUES:
            raise ConfigurationError(f"unknown technique {self.technique!r}")
        if self.logging_mode not in self.VALID_LOGGING:
            raise ConfigurationError(
                f"unknown logging mode {self.logging_mode!r}"
            )
        if self.n_experiments < 1:
            raise ConfigurationError(
                f"n_experiments must be >= 1, got {self.n_experiments}"
            )
        if not self.location_patterns:
            raise ConfigurationError("campaign selects no fault locations")
        if self.timeout_cycles is not None and self.timeout_cycles <= 0:
            raise ConfigurationError("timeout_cycles must be positive")
        if self.timeout_factor <= 1.0:
            raise ConfigurationError("timeout_factor must exceed 1.0")
        if self.preinjection_mode not in (
            "dynamic",
            "static",
            "hybrid",
            "equivalence",
        ):
            raise ConfigurationError(
                f"unknown pre-injection mode {self.preinjection_mode!r}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "campaign_name": self.campaign_name,
            "target_name": self.target_name,
            "technique": self.technique,
            "workload_name": self.workload_name,
            "workload_params": self.workload_params,
            "location_patterns": self.location_patterns,
            "fault_model": self.fault_model.to_dict(),
            "trigger": self.trigger.to_dict(),
            "n_experiments": self.n_experiments,
            "seed": self.seed,
            "timeout_cycles": self.timeout_cycles,
            "timeout_factor": self.timeout_factor,
            "max_iterations": self.max_iterations,
            "logging_mode": self.logging_mode,
            "observe_patterns": self.observe_patterns,
            "environment": self.environment.to_dict() if self.environment else None,
            "use_preinjection": self.use_preinjection,
            "preinjection_mode": self.preinjection_mode,
            "protect_code": self.protect_code,
            "warm_start": self.warm_start,
            "checkpoint_interval": self.checkpoint_interval,
            "full_scan_shift": self.full_scan_shift,
        }

    @staticmethod
    def from_dict(data: dict) -> "CampaignData":
        data = dict(data)
        data["fault_model"] = FaultModelSpec.from_dict(data["fault_model"])
        data["trigger"] = TriggerSpec.from_dict(data["trigger"])
        env = data.get("environment")
        data["environment"] = EnvironmentSpec.from_dict(env) if env else None
        return CampaignData(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "CampaignData":
        return CampaignData.from_dict(json.loads(text))

    # -- set-up phase operations (Section 3.2) ---------------------------------

    def modified(self, **changes) -> "CampaignData":
        """A copy with fields replaced — the set-up window's "modify
        already stored campaign data" operation."""
        data = self.to_dict()
        for key, value in changes.items():
            if key not in data:
                raise ConfigurationError(f"unknown campaign field {key!r}")
            if hasattr(value, "to_dict"):
                value = value.to_dict()
            data[key] = value
        result = CampaignData.from_dict(data)
        return result

    @staticmethod
    def merge(
        new_name: str, campaigns: Sequence["CampaignData"]
    ) -> "CampaignData":
        """Merge several campaigns into a new one (set-up window feature).

        All source campaigns must share target, technique and workload;
        the merge unions their fault-location selections and sums their
        experiment counts.
        """
        if not campaigns:
            raise ConfigurationError("merge needs at least one campaign")
        first = campaigns[0]
        for other in campaigns[1:]:
            if (
                other.target_name != first.target_name
                or other.technique != first.technique
                or other.workload_name != first.workload_name
            ):
                raise ConfigurationError(
                    "merged campaigns must share target, technique and workload"
                )
        patterns: List[str] = []
        for campaign in campaigns:
            for pattern in campaign.location_patterns:
                if pattern not in patterns:
                    patterns.append(pattern)
        merged = first.modified(
            campaign_name=new_name,
            location_patterns=patterns,
            n_experiments=sum(c.n_experiments for c in campaigns),
        )
        return merged
