"""Golden-run disk cache: skip redundant reference executions.

Every campaign starts with a *golden* (reference) run — the fault-free
execution whose trace, duration, outputs and (since the warm-start
subsystem) checkpoint store everything else is derived from. The golden
run is a pure function of the campaign configuration: same target, same
workload, same parameters ⇒ byte-identical golden run. Repeated ``goofi
run`` invocations of an unchanged campaign, and every worker of a
parallel campaign, would each redo it from scratch.

:class:`GoldenRunCache` stores the golden run on disk keyed by the
campaign's config hash (:func:`repro.observability.runmeta
.campaign_config_hash` — a canonical digest of the *entire* campaign
record) folded with the tool version and the checkpoint format version,
so any configuration change — *or* any tool upgrade that could change
what a golden run contains or how its checkpoints are fingerprinted —
invalidates the entry automatically. Entries are pickled atomically
(write to a temp file, then ``os.replace``) so a crashed writer never
leaves a torn entry; a corrupt, stale or cross-version entry is treated
as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.checkpoint import CHECKPOINT_FORMAT, CheckpointStore
from repro.core.experiment import ReferenceRun

#: Bumped whenever the pickled layout of GoldenRun (or anything it
#: transitively contains) changes shape; old entries then miss cleanly.
CACHE_FORMAT = 1


@dataclass
class GoldenRun:
    """One cache entry: the reference run plus its checkpoint store,
    stamped with the campaign config hash, the target, and the tool /
    checkpoint-format versions that produced it (``None`` on entries
    pickled before versions were stamped — always a mismatch)."""

    config_hash: str
    target_name: str
    reference: ReferenceRun
    checkpoints: Optional[CheckpointStore] = None
    tool_version: Optional[str] = None
    checkpoint_format: Optional[int] = None


def campaign_golden_key(campaign) -> str:
    """Cache key for a campaign's golden run: the canonical config hash
    over the *bound* campaign record (compute it after the port's
    ``read_campaign_data`` so resolved fields are included), folded with
    the tool version and the checkpoint-format version.

    The version fold is load-bearing: a golden run pickled by an older
    tool can deserialise perfectly well yet carry checkpoints whose
    fingerprints were computed over a different state layout — silently
    adopting one would make every warm restore fall cold at best, or
    validate against the wrong digest at worst. A version bump must be a
    clean miss, exactly like a corrupt entry."""
    from repro.observability.runmeta import campaign_config_hash, tool_version

    base = campaign_config_hash(campaign)
    return hashlib.sha256(
        f"{base}:{tool_version()}:ckpt{CHECKPOINT_FORMAT}".encode("utf-8")
    ).hexdigest()


class GoldenRunCache:
    """Directory of pickled :class:`GoldenRun` entries, one per config
    hash. Attach to a port via ``port.golden_cache = GoldenRunCache(d)``
    (the CLI's ``--golden-cache`` flag does exactly this)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"golden-v{CACHE_FORMAT}-{key}.pickle"

    def load(self, key: Optional[str]) -> Optional[GoldenRun]:
        """The cached golden run for ``key``, or None. Corrupt,
        unreadable, mislabelled or cross-version entries count as
        misses (``getattr``: entries pickled before the version stamps
        existed deserialise without the attributes and must miss)."""
        if not key:
            return None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(entry, GoldenRun) or entry.config_hash != key:
            self.misses += 1
            return None
        from repro.observability.runmeta import tool_version

        if (
            getattr(entry, "tool_version", None) != tool_version()
            or getattr(entry, "checkpoint_format", None) != CHECKPOINT_FORMAT
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, golden: GoldenRun) -> Path:
        """Atomically persist one golden run (temp file + rename),
        stamping it with the producing tool / checkpoint-format versions
        so :meth:`load` can refuse cross-version adoption."""
        from repro.observability.runmeta import tool_version

        golden.tool_version = tool_version()
        golden.checkpoint_format = CHECKPOINT_FORMAT
        path = self.path_for(golden.config_hash)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".golden-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(golden, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self.root.glob(f"golden-v{CACHE_FORMAT}-*.pickle"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(
            1 for _ in self.root.glob(f"golden-v{CACHE_FORMAT}-*.pickle")
        )
