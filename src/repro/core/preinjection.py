"""Pre-injection analysis (paper Section 4).

"The purpose of this analysis is to determine when registers and other
fault injection locations hold live data. Injecting a fault into a
location that does not hold live data serves no purpose, since the fault
will be overwritten."

The analysis consumes the reference execution trace and answers, for a
(location, time) pair, whether the location is *live* at that time — i.e.
whether the next architectural access to it is a **read** (the fault can
propagate) rather than a **write** (the fault is overwritten) or nothing
at all (the fault stays latent and cannot affect the workload's outputs).

Covered location classes:

* register file cells  (``scan:internal/cpu.regfile.rN``, ``swreg:cpu.regfile.rN``)
* the PSR              (flag producers/consumers)
* the PC / IR latches  (always live — consumed by the very next fetch)
* memory words         (``memory:code/...``, ``memory:data/...``, ``swreg:memory...``)

For state the trace cannot see (cache arrays, MAR/MDR), the analysis is
conservative and reports *live*, so enabling pre-injection never silently
prunes locations it does not understand.

Three pruning modes are available to campaigns
(``CampaignData.preinjection_mode``):

* ``dynamic`` — this module's trace-based oracle (the default);
* ``static``  — the trace-free CFG/liveness oracle of
  :mod:`repro.staticanalysis` (a sound over-approximation: it never
  prunes a pair the dynamic oracle reports live);
* ``hybrid``  — the intersection of both
  (:class:`HybridPreInjectionAnalysis`): a pair must be live statically
  *and* dynamically, which equals the dynamic result by the soundness
  contract but cross-checks the two analyses against each other.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.locations import FaultLocation, LocationSpace
from repro.core.trace import Trace
from repro.util.sampling import iter_pairs, pair_count

_REG_RE = re.compile(r"cpu\.regfile\.r(\d+)$")
_MEM_RE = re.compile(r"word\.0x([0-9a-fA-F]+)$")

READ = "r"
WRITE = "w"


@dataclass
class _AccessList:
    """Time-ordered accesses to one location."""

    times: List[int] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)

    def add(self, time: int, kind: str) -> None:
        self.times.append(time)
        self.kinds.append(kind)

    def next_access_is_read(self, time: int) -> bool:
        """Is the first access at or after ``time`` a read?"""
        pos = bisect.bisect_left(self.times, time)
        if pos >= len(self.times):
            return False
        return self.kinds[pos] == READ


class PreInjectionAnalysis:
    """Liveness oracle built from a reference trace."""

    def __init__(
        self,
        registers: Dict[int, _AccessList],
        flags: _AccessList,
        memory: Dict[int, _AccessList],
        duration: int,
    ):
        self._registers = registers
        self._flags = flags
        self._memory = memory
        self._duration = duration

    @staticmethod
    def from_trace(trace: Trace, space: LocationSpace) -> "PreInjectionAnalysis":
        registers: Dict[int, _AccessList] = {}
        flags = _AccessList()
        memory: Dict[int, _AccessList] = {}

        def reg_list(index: int) -> _AccessList:
            if index not in registers:
                registers[index] = _AccessList()
            return registers[index]

        def mem_list(address: int) -> _AccessList:
            if address not in memory:
                memory[address] = _AccessList()
            return memory[address]

        for step in trace:
            t = step.cycle_before
            # Within one instruction, reads happen before writes; record
            # reads at t and writes at t so that a fault injected exactly
            # at the boundary *before* the instruction sees the read first
            # (a read at t makes the location live at time <= t).
            for index in step.reg_reads:
                reg_list(index).add(t, READ)
            for index in step.reg_writes:
                if index in step.reg_reads:
                    continue  # the read already claims this instant
                reg_list(index).add(t, WRITE)
            if step.reads_flags:
                flags.add(t, READ)
            if step.writes_flags and not step.reads_flags:
                flags.add(t, WRITE)
            if step.mem_address is not None:
                kind = WRITE if step.mem_is_write else READ
                mem_list(step.mem_address).add(t, kind)
        return PreInjectionAnalysis(
            registers, flags, memory, duration=trace.duration_cycles
        )

    # -- queries ---------------------------------------------------------------

    def is_live(self, location: FaultLocation, time: int) -> bool:
        path = location.path
        reg_match = _REG_RE.search(path)
        if reg_match is not None:
            accesses = self._registers.get(int(reg_match.group(1)))
            if accesses is None:
                return False
            return accesses.next_access_is_read(time)
        if path.endswith("cpu.psr"):
            return self._flags.next_access_is_read(time)
        if path.endswith("cpu.pc") or path.endswith("pipeline.ir"):
            return time <= self._duration
        mem_match = _MEM_RE.search(path)
        if mem_match is not None:
            accesses = self._memory.get(int(mem_match.group(1), 16))
            if accesses is None:
                return False
            return accesses.next_access_is_read(time)
        # Unknown state element: be conservative, never prune.
        return True

    def live_fraction(
        self,
        locations: Sequence[FaultLocation],
        times: Sequence[int],
        max_samples: Optional[int] = None,
    ) -> float:
        """Diagnostic: fraction of (location, time) samples that are live.

        The E5 benchmark reports this as the efficiency headroom of
        pre-injection analysis. The exhaustive loop is
        O(|locations| * |times|); pass ``max_samples`` to cap the work at
        a deterministic uniform sample for large fault spaces."""
        total = pair_count(locations, times, max_samples)
        if total == 0:
            return 0.0
        live = sum(
            1
            for loc, t in iter_pairs(locations, times, max_samples)
            if self.is_live(loc, t)
        )
        return live / total


class HybridPreInjectionAnalysis:
    """Intersection of the static and dynamic liveness oracles.

    A (location, time) pair is live only when **both** analyses agree.
    Because the static analysis over-approximates the dynamic one, the
    intersection normally equals the dynamic result — but evaluating the
    cheap static oracle first short-circuits most dead samples, and any
    pair the static analysis prunes while the dynamic one keeps would be
    a soundness violation, which :meth:`disagreements` surfaces for the
    property tests.
    """

    def __init__(self, static, dynamic: PreInjectionAnalysis):
        self.static = static
        self.dynamic = dynamic

    def is_live(self, location: FaultLocation, time: int) -> bool:
        return self.static.is_live(location, time) and self.dynamic.is_live(
            location, time
        )

    def live_fraction(
        self,
        locations: Sequence[FaultLocation],
        times: Sequence[int],
        max_samples: Optional[int] = None,
    ) -> float:
        total = pair_count(locations, times, max_samples)
        if total == 0:
            return 0.0
        live = sum(
            1
            for loc, t in iter_pairs(locations, times, max_samples)
            if self.is_live(loc, t)
        )
        return live / total

    def disagreements(
        self,
        locations: Sequence[FaultLocation],
        times: Sequence[int],
        max_samples: Optional[int] = None,
    ) -> List[Tuple[FaultLocation, int]]:
        """(location, time) pairs live dynamically but pruned statically.

        Always empty when the static analysis honours its soundness
        contract."""
        return [
            (loc, t)
            for loc, t in iter_pairs(locations, times, max_samples)
            if self.dynamic.is_live(loc, t)
            and not self.static.is_live(loc, t)
        ]


#: Pruning modes a campaign may select (CampaignData.preinjection_mode).
#: "equivalence" plans exactly like "static" but additionally partitions
#: the planned fault list into provably outcome-identical classes so the
#: campaign loop executes one representative per class.
PREINJECTION_MODES = ("dynamic", "static", "hybrid", "equivalence")


def build_liveness_oracle(
    mode: str,
    trace: Optional[Trace],
    space: LocationSpace,
    program=None,
):
    """Construct the liveness oracle for one campaign.

    ``program`` is the target's assembled workload image (the
    ``workload_program`` building block); it is required for the
    ``static`` and ``hybrid`` modes. ``trace`` is the reference trace,
    required for ``dynamic`` and ``hybrid``.
    """
    from repro.staticanalysis.oracle import StaticPreInjectionAnalysis
    from repro.util.errors import CampaignError

    if mode not in PREINJECTION_MODES:
        raise CampaignError(f"unknown pre-injection mode {mode!r}")
    if mode == "dynamic":
        if trace is None:
            raise CampaignError("dynamic pre-injection needs a reference trace")
        return PreInjectionAnalysis.from_trace(trace, space)
    if program is None:
        raise CampaignError(
            f"pre-injection mode {mode!r} needs the workload program image; "
            "the target does not implement the workload_program building "
            "block"
        )
    duration = trace.duration_cycles if trace is not None else None
    if mode == "equivalence":
        from repro.staticanalysis.equivalence import (
            EquivalencePreInjectionAnalysis,
        )

        if trace is None:
            raise CampaignError(
                "equivalence pre-injection needs a reference trace"
            )
        return EquivalencePreInjectionAnalysis(
            program, trace, duration=duration
        )
    static = StaticPreInjectionAnalysis(program, duration=duration)
    if mode == "static":
        return static
    if trace is None:
        raise CampaignError("hybrid pre-injection needs a reference trace")
    return HybridPreInjectionAnalysis(
        static, PreInjectionAnalysis.from_trace(trace, space)
    )
