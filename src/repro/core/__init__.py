"""GOOFI core: the paper's primary contribution.

This package is the middle layer of Figure 1 — the
:class:`~repro.core.algorithms.FaultInjectionAlgorithms` class whose
abstract methods are the building blocks of fault-injection techniques,
the :class:`~repro.core.framework.Framework` template used to port the
tool to a new target system, and the campaign machinery around them
(fault models, triggers, location spaces, pre-injection analysis, and the
campaign controller with its progress/pause/resume interface).
"""

from repro.core.algorithms import FaultInjectionAlgorithms
from repro.core.campaign import CampaignData, FaultModelSpec, TriggerSpec
from repro.core.controller import CampaignController, CampaignProgress
from repro.core.experiment import ExperimentResult, Injection
from repro.core.framework import (
    Framework,
    available_targets,
    available_techniques,
    create_target,
    register_target,
    worker_factory,
)
from repro.core.locations import FaultLocation, LocationCell, LocationSpace
from repro.core.parallel import (
    ParallelCampaignController,
    ParallelConfig,
    run_parallel_campaign,
)

__all__ = [
    "FaultInjectionAlgorithms",
    "CampaignData",
    "FaultModelSpec",
    "TriggerSpec",
    "CampaignController",
    "CampaignProgress",
    "ExperimentResult",
    "Injection",
    "Framework",
    "available_targets",
    "available_techniques",
    "create_target",
    "register_target",
    "worker_factory",
    "ParallelCampaignController",
    "ParallelConfig",
    "run_parallel_campaign",
    "FaultLocation",
    "LocationCell",
    "LocationSpace",
]
