"""Fault triggers: when to inject.

The shipped GOOFI triggers on points in time (breakpoints derived from the
campaign data); Section 4 lists the planned richer triggers — "access of
certain data values, execution of branch instructions or subprogram calls
... or at specific times determined by a real-time clock". All are
implemented here. A trigger *resolves* to one concrete injection instant
(a cycle number) per experiment, using the reference trace where the
trigger is event-based.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.core.trace import Trace, TraceStep
from repro.util.errors import ConfigurationError


@dataclass
class TriggerSpec:
    """Declarative trigger description stored in CampaignData.

    kind:
        "time-uniform"  — uniform over (0, reference duration]   (default)
        "time-fixed"    — always at cycle ``time``
        "address"       — at an execution of instruction address ``address``
        "branch"        — at an executed branch instruction
        "call"          — at an executed CALL
        "data-access"   — at an access to memory address ``address``
                          (optionally only when the value equals ``value``)
        "task-switch"   — at an execution of the workload's task-switch
                          routine (address resolved by the target
                          interface from the workload's ``task_switch``
                          label)
        "clock"         — at a multiple of ``period`` cycles (real-time
                          clock tick), chosen uniformly

    ``occurrence`` selects which matching event: a 1-based index, or 0 for
    "uniformly random occurrence" (the default).
    """

    kind: str = "time-uniform"
    time: int = 0
    address: int = 0
    value: Optional[int] = None
    occurrence: int = 0
    period: int = 1000

    VALID_KINDS = (
        "time-uniform",
        "time-fixed",
        "address",
        "branch",
        "call",
        "data-access",
        "task-switch",
        "clock",
    )

    def __post_init__(self):
        if self.kind not in self.VALID_KINDS:
            raise ConfigurationError(f"unknown trigger kind {self.kind!r}")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "TriggerSpec":
        return TriggerSpec(**data)

    @property
    def needs_trace(self) -> bool:
        return self.kind in (
            "address", "branch", "call", "data-access", "task-switch"
        )

    # -- resolution -----------------------------------------------------------

    def resolve(
        self, rng: random.Random, trace: Optional[Trace], duration_cycles: int
    ) -> List[int]:
        """Concrete injection instant(s) for one experiment."""
        if duration_cycles <= 0:
            raise ConfigurationError("reference duration must be positive")
        if self.kind == "time-uniform":
            return [rng.randint(1, duration_cycles)]
        if self.kind == "time-fixed":
            return [self.time]
        if self.kind == "clock":
            ticks = max(1, duration_cycles // self.period)
            return [self.period * rng.randint(1, ticks)]
        if trace is None:
            raise ConfigurationError(
                f"trigger {self.kind!r} needs a reference trace"
            )
        candidates = self._candidates(trace)
        if not candidates:
            raise ConfigurationError(
                f"trigger {self.kind!r} matched no events in the reference run"
            )
        if self.occurrence > 0:
            if self.occurrence > len(candidates):
                raise ConfigurationError(
                    f"trigger asks for occurrence {self.occurrence} but only "
                    f"{len(candidates)} events matched"
                )
            step = candidates[self.occurrence - 1]
        else:
            step = rng.choice(candidates)
        # Stop at the instruction boundary *before* the triggering step.
        return [max(1, step.cycle_before)]

    def _candidates(self, trace: Trace) -> List[TraceStep]:
        if self.kind in ("address", "task-switch"):
            # task-switch is an address trigger whose address the target
            # interface filled in from the workload's task_switch label.
            return trace.executions_of(self.address)
        if self.kind == "branch":
            return trace.branch_steps()
        if self.kind == "call":
            return trace.call_steps()
        if self.kind == "data-access":
            steps = trace.accesses_to(self.address)
            if self.value is not None:
                steps = [s for s in steps if s.mem_value == self.value]
            return steps
        raise AssertionError(self.kind)  # pragma: no cover
