"""SCIFI: Scan-Chain Implemented Fault Injection.

The technique the paper implements for the Thor RD target: faults are
injected "via the built-in test-logic, i.e. boundary scan-chains and
internal scan-chains ... into the pins and many of the internal state
elements of an integrated circuit as well as observation of the internal
state". This package provides the TargetSystemInterface for the simulated
Thor RD test card.
"""

from repro.scifi.interface import ThorRDInterface

__all__ = ["ThorRDInterface"]
