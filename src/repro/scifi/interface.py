"""TargetSystemInterface for the (simulated) Thor RD test card.

This is the class the Framework template (Figure 3) exists to produce:
every abstract building block of the fault-injection algorithms, filled in
against the THOR-lite test card — scan chains for SCIFI, the download
port for pre-runtime SWIFI, trap-based instrumentation for runtime SWIFI
(delegated to :mod:`repro.swifi`), and direct simulator state access for
the simulation baseline.
"""

from __future__ import annotations

import pickle
import re
from typing import Dict, List, Optional, Sequence, Set

from repro.core.campaign import CampaignData
from repro.core.checkpoint import (
    CheckpointMismatch,
    CheckpointTick,
    RestoreImage,
    state_digest,
)
from repro.core.experiment import Injection, StateVector, Termination
from repro.core.faultmodels import InjectionAction, InjectionPlan, apply_op
from repro.core.framework import Framework, register_target
from repro.core.locations import FaultLocation, LocationCell, LocationSpace
from repro.core.trace import Trace, TraceStep
from repro.environment.simulator import build_environment
from repro.swifi.instrument import TrapInstrumenter, _invalidate_cached_word
from repro.swifi.preruntime import flip_image_bit
from repro.thor import isa
from repro.thor.cpu import CpuConfig
from repro.thor.isa import Opcode, try_decode
from repro.thor.effects import register_effects
from repro.thor.testcard import DebugEvent, DebugEventKind, TestCard
from repro.util.bits import bit_get, bit_set
from repro.util.errors import CampaignError, TargetError
from repro.workloads import WorkloadDefinition, get_workload

_MEM_PATH_RE = re.compile(r"^word\.0x([0-9a-fA-F]+)$")
_SWREG_RE = re.compile(r"^cpu\.regfile\.r(\d+)$")


def _termination_from_event(event: DebugEvent) -> Termination:
    if event.kind is DebugEventKind.HALT:
        return Termination(kind="halt", pc=event.pc, cycle=event.cycle,
                           iterations=event.iteration)
    if event.kind is DebugEventKind.TIMEOUT:
        return Termination(kind="timeout", pc=event.pc, cycle=event.cycle)
    if event.kind is DebugEventKind.MAX_ITERATIONS:
        return Termination(
            kind="max_iterations",
            pc=event.pc,
            cycle=event.cycle,
            iterations=event.iteration,
        )
    if event.kind is DebugEventKind.TRAP:
        trap = event.trap
        return Termination(
            kind="trap",
            pc=event.pc,
            cycle=event.cycle,
            trap_name=trap.trap.value,
            trap_detail=trap.detail,
            trap_code=trap.code,
        )
    raise TargetError(f"unexpected debug event {event.kind}")


@register_target("thor-rd")
class ThorRDInterface(Framework):
    """Port of GOOFI to the Thor RD test card (simulated)."""

    def __init__(self, config: Optional[CpuConfig] = None):
        super().__init__()
        self.card = TestCard(config)
        self._workload: Optional[WorkloadDefinition] = None
        self._environment = None
        # Tracing state.
        self._tracing = False
        self._trace = Trace()
        self._prev_cycles = 0
        # Detail-mode state.
        self._detail = False
        self._detail_states: List[StateVector] = []
        # Runtime-SWIFI instrumentation (one instrumenter per experiment).
        self._instrumenter: Optional[TrapInstrumenter] = None
        # Cached per-campaign structures.
        self._space: Optional[LocationSpace] = None
        self._observe_cells: List[LocationCell] = []
        # Golden-run checkpoint capture state (reference run only).
        self._checkpointing = False
        self._checkpoint_pages: Set[int] = set()
        self.card.on_step = self._dispatch_step
        self.card.trap_hook = self._dispatch_trap

    # ------------------------------------------------------------------
    # Campaign binding
    # ------------------------------------------------------------------

    def read_campaign_data(self, campaign: CampaignData) -> None:
        # Build the workload first: the location space includes the
        # workload's memory image, and validation needs it.
        self._workload = get_workload(
            campaign.workload_name, campaign.workload_params
        )
        self._space = None
        if campaign.environment is None and self._workload.uses_environment:
            raise CampaignError(
                f"workload {campaign.workload_name!r} needs an environment "
                "simulator; set campaign.environment"
            )
        super().read_campaign_data(campaign)
        if campaign.trigger.kind == "task-switch":
            campaign.trigger.address = self._workload.label("task_switch")
        self._observe_cells = self.location_space().select_cells(
            campaign.observe_patterns, writable_only=False
        )
        if campaign.max_iterations is None:
            campaign.max_iterations = self._workload.default_max_iterations
        if self._workload.is_loop and campaign.max_iterations is None:
            raise CampaignError(
                "loop workloads need max_iterations as a termination condition"
            )

    def available_workloads(self):
        from repro.workloads import available_workloads

        return available_workloads()

    def workload_program(self):
        """The bound campaign's assembled THOR-lite program image —
        unlocks the static pre-injection oracle and the static lint
        checks (also inherited by the thor-rd-sim port)."""
        return self._workload.program if self._workload is not None else None

    # ------------------------------------------------------------------
    # Common building blocks
    # ------------------------------------------------------------------

    def init_test_card(self) -> None:
        self.card.init()
        self._detail_states = []
        self._instrumenter = None
        self._environment = None
        # card.init() wipes memory (and with it the dirty-page set), but
        # the tracking flag lives here: make sure reference-run tracking
        # never leaks into experiment execution.
        self.card.cpu.memory.stop_dirty_tracking()
        self._checkpointing = False
        self._checkpoint_pages = set()

    def load_workload(self) -> None:
        workload = self._require_workload()
        self.card.load_program(workload.program)
        campaign = self.campaign
        if campaign is not None and campaign.protect_code:
            code = workload.program.code_addresses()
            if code:
                self.card.cpu.memory.protect(min(code), max(code))

    def write_memory(self) -> None:
        workload = self._require_workload()
        for address, value in workload.input_writes.items():
            self.card.write_memory(address, value)

    def read_memory(self) -> Dict[str, int]:
        workload = self._require_workload()
        outputs: Dict[str, int] = {}
        for name, (base, count) in workload.outputs.items():
            values = self.card.read_memory_block(base, count)
            if count == 1:
                outputs[name] = values[0]
            else:
                for i, value in enumerate(values):
                    outputs[f"{name}[{i}]"] = value
        if self._environment is not None:
            for key, value in self._environment.summary().items():
                outputs[f"env.{key}"] = int(round(value * 256))
        return outputs

    def run_workload(self) -> None:
        campaign = self._require_campaign()
        if campaign.environment is not None:
            self._environment = build_environment(
                campaign.environment.name, campaign.environment.params
            )
            self._environment.initialize(self.card)
            self.card.on_sync = self._environment.exchange
        else:
            self.card.on_sync = None

    def wait_for_breakpoint(self, stop_cycle: int) -> Optional[Termination]:
        event = self.card.run(
            timeout_cycles=self._experiment_budget(),
            max_iterations=self._require_campaign().max_iterations,
            stop_cycle=stop_cycle,
        )
        if event.kind is DebugEventKind.BREAKPOINT:
            return None
        return _termination_from_event(event)

    def wait_for_termination(
        self, timeout_cycles: int, max_iterations: Optional[int]
    ) -> Termination:
        event = self.card.run(
            timeout_cycles=timeout_cycles, max_iterations=max_iterations
        )
        return _termination_from_event(event)

    # ------------------------------------------------------------------
    # SCIFI blocks
    # ------------------------------------------------------------------

    def read_scan_chain(
        self, names: Optional[Sequence[str]] = None
    ) -> Dict[str, List[int]]:
        chain_names = self.card.chains if names is None else names
        return {name: self.card.read_chain(name) for name in chain_names}

    def write_scan_chain(self, chains: Dict[str, List[int]]) -> None:
        for name, bits in chains.items():
            self.card.write_chain(name, bits)

    def inject_fault(
        self, chains: Dict[str, List[int]], action: InjectionAction
    ) -> List[Injection]:
        injections = []
        for location in action.locations:
            if not location.space.startswith("scan:"):
                raise CampaignError(
                    f"SCIFI cannot inject into {location.key()}"
                )
            chain_name = location.space.split(":", 1)[1]
            chain = self.card.chain(chain_name)
            offset = chain.bit_offset(location.path, location.bit)
            before = chains[chain_name][offset]
            after = apply_op(before, action.op)
            chains[chain_name][offset] = after
            injections.append(
                Injection(
                    time=action.time,
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
        return injections

    # ------------------------------------------------------------------
    # Pre-runtime SWIFI block
    # ------------------------------------------------------------------

    def inject_fault_preruntime(self, action: InjectionAction) -> List[Injection]:
        injections = []
        for location in action.locations:
            address = self._memory_location_address(location)
            before, after = flip_image_bit(
                self.card, address, location.bit, action.op
            )
            injections.append(
                Injection(
                    time=0,  # pre-runtime: injected before execution starts
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
        return injections

    # ------------------------------------------------------------------
    # Runtime SWIFI blocks (delegated to repro.swifi.instrument)
    # ------------------------------------------------------------------

    def instrument_workload(self, plan: InjectionPlan) -> None:
        reference = self._reference
        if reference is None or reference.trace is None:
            raise CampaignError(
                "runtime SWIFI needs the reference trace to place traps"
            )
        self._instrumenter = TrapInstrumenter(self.card)
        self._instrumenter.instrument(plan, reference.trace)

    def collect_runtime_injections(self) -> List[Injection]:
        if self._instrumenter is None:
            return []
        return list(self._instrumenter.injections)

    # ------------------------------------------------------------------
    # Pin-level block (EXTEST bus forcing through the boundary chain)
    # ------------------------------------------------------------------

    def force_pins(self, action: InjectionAction) -> List[Injection]:
        """Arm forcing of the selected data-bus lines via the boundary
        chain. The force duration follows the campaign's fault model:
        transient = 1 read transaction, intermittent = burst_length
        transactions, permanent = the pads' maximum (255)."""
        campaign = self._require_campaign()
        spec = campaign.fault_model
        reads = {
            "transient": 1,
            "intermittent": spec.burst_length,
            "permanent": 255,
        }[spec.kind]
        bus = self.card.cpu.bus
        mask = bus.force_mask
        value = bus.force_value
        injections = []
        for location in action.locations:
            if (
                location.space != "scan:boundary"
                or location.path != "pins.data_bus"
            ):
                raise CampaignError(
                    "pin-level forcing acts on the data-bus pads "
                    f"(scan:boundary/pins.data_bus), not {location.key()}"
                )
            before = bit_get(self.card.cpu.pipeline.mdr, location.bit)
            after = apply_op(before, action.op)
            mask |= 1 << location.bit
            value = bit_set(value, location.bit, after)
            injections.append(
                Injection(
                    time=action.time,
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
        # Shift the armed force state in through the boundary chain (the
        # injection pays real scan-access cost, like any SCIFI write).
        chain = self.card.chain("boundary")
        bits = self.card.read_chain("boundary")
        for path, field_value, width in (
            ("pins.force_mask", mask, 32),
            ("pins.force_value", value, 32),
            ("pins.force_reads", min(reads, 255), 8),
        ):
            offset = chain.bit_offset(path, 0)
            for i in range(width):
                bits[offset + i] = (field_value >> i) & 1
        self.card.write_chain("boundary", bits)
        return injections

    # ------------------------------------------------------------------
    # Simulation-based (direct access) block
    # ------------------------------------------------------------------

    def inject_fault_direct(self, action: InjectionAction) -> List[Injection]:
        injections = []
        for location in action.locations:
            if location.space.startswith("scan:"):
                chain_name = location.space.split(":", 1)[1]
                cell = self.card.chain(chain_name).cell(location.path)
                if cell.read_only:
                    raise CampaignError(
                        f"cannot inject into read-only cell {location.key()}"
                    )
                word = cell.reader()
                before = bit_get(word, location.bit)
                after = apply_op(before, action.op)
                cell.writer(bit_set(word, location.bit, after))
            elif location.space.startswith("memory:"):
                address = self._memory_location_address(location)
                word = self.card.read_memory(address)
                before = bit_get(word, location.bit)
                after = apply_op(before, action.op)
                self.card.write_memory(address, bit_set(word, location.bit, after))
                _invalidate_cached_word(self.card.cpu.dcache, address)
                _invalidate_cached_word(self.card.cpu.icache, address)
            elif location.space == "swreg":
                match = _SWREG_RE.match(location.path)
                if not match:
                    raise CampaignError(f"bad swreg location {location.key()}")
                index = int(match.group(1))
                word = self.card.cpu.regs.read(index)
                before = bit_get(word, location.bit)
                after = apply_op(before, action.op)
                self.card.cpu.regs.write(index, bit_set(word, location.bit, after))
            else:
                raise CampaignError(f"unknown location space {location.space!r}")
            injections.append(
                Injection(
                    time=action.time,
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
        return injections

    # ------------------------------------------------------------------
    # Observation / tracing / detail mode
    # ------------------------------------------------------------------

    def location_space(self) -> LocationSpace:
        if self._space is not None:
            return self._space
        cells: List[LocationCell] = []
        for chain_name, chain in self.card.chains.items():
            for info in chain.describe():
                cells.append(
                    LocationCell(
                        space=f"scan:{chain_name}",
                        path=str(info["path"]),
                        width=int(info["width"]),
                        read_only=bool(info["read_only"]),
                    )
                )
        workload = self._workload
        if workload is not None:
            for address in sorted(workload.program.words):
                kind = workload.program.kinds[address]
                cells.append(
                    LocationCell(
                        space=f"memory:{kind}",
                        path=f"word.0x{address:04x}",
                        width=32,
                    )
                )
            # Input data lives outside the assembled image.
            for address in sorted(workload.input_writes):
                if address not in workload.program.words:
                    cells.append(
                        LocationCell(
                            space="memory:data",
                            path=f"word.0x{address:04x}",
                            width=32,
                        )
                    )
        for index in range(isa.NUM_REGISTERS):
            cells.append(
                LocationCell(
                    space="swreg", path=f"cpu.regfile.r{index}", width=32
                )
            )
        self._space = LocationSpace(cells)
        return self._space

    def capture_state_vector(self) -> StateVector:
        vector: StateVector = {}
        chain_bits: Dict[str, List[int]] = {}
        for cell in self._observe_cells:
            if cell.space.startswith("scan:"):
                chain_name = cell.space.split(":", 1)[1]
                if chain_name not in chain_bits:
                    chain_bits[chain_name] = self.card.read_chain(chain_name)
                chain = self.card.chain(chain_name)
                offset = chain.bit_offset(cell.path, 0)
                bits = chain_bits[chain_name][offset : offset + cell.width]
                value = 0
                for i, bit in enumerate(bits):
                    value |= bit << i
                vector[cell.full_path] = value
            elif cell.space.startswith("memory:"):
                address = int(cell.path.split("0x", 1)[1], 16)
                vector[cell.full_path] = self.card.read_memory(address)
            elif cell.space == "swreg":
                match = _SWREG_RE.match(cell.path)
                if match:
                    vector[cell.full_path] = self.card.cpu.regs.read(
                        int(match.group(1))
                    )
        return vector

    def start_trace(self) -> None:
        self._tracing = True
        self._trace = Trace()
        self._prev_cycles = self.card.cpu.cycles

    def stop_trace(self) -> Trace:
        self._tracing = False
        return self._trace

    def set_detail_logging(self, enabled: bool) -> None:
        self._detail = enabled
        if enabled:
            self._detail_states = []

    def drain_detail_states(self) -> List[StateVector]:
        states = self._detail_states
        self._detail_states = []
        return states

    def _dispatch_trap(self, card: TestCard, trap_event) -> bool:
        if self._instrumenter is None:
            return False
        return self._instrumenter.handle_trap(card, trap_event)

    def _dispatch_step(self, card: TestCard) -> None:
        if self._instrumenter is not None:
            self._instrumenter.on_step(card)
        if self._tracing:
            self._trace_step(card)
        if self._detail:
            self._detail_states.append(self.capture_state_vector())

    def _trace_step(self, card: TestCard) -> None:
        cpu = card.cpu
        last = cpu.last_exec
        word = cpu.pipeline.ir
        instr = try_decode(word)
        if instr is not None:
            effects = register_effects(instr)
            reg_reads = tuple(sorted(effects.reg_reads))
            reg_writes = tuple(sorted(effects.reg_writes))
            reads_flags = effects.reads_flags
            writes_flags = effects.writes_flags
            is_branch = instr.opcode in isa.BRANCHES
            is_call = instr.opcode is Opcode.CALL
        else:
            reg_reads = reg_writes = ()
            reads_flags = writes_flags = False
            is_branch = is_call = False
        step = TraceStep(
            index=len(self._trace),
            pc=last.pc,
            cycle_before=self._prev_cycles,
            cycle_after=cpu.cycles,
            is_branch=is_branch,
            branch_taken=last.branch_taken,
            is_call=is_call,
            mem_address=last.mem_address,
            mem_value=last.mem_value,
            mem_is_write=last.mem_is_write,
            reg_reads=reg_reads,
            reg_writes=reg_writes,
            reads_flags=reads_flags,
            writes_flags=writes_flags,
        )
        self._trace.append(step)
        self._prev_cycles = cpu.cycles

    # ------------------------------------------------------------------
    # Target description (TargetSystemData)
    # ------------------------------------------------------------------

    def describe_target(self) -> dict:
        config = self.card.cpu.config
        return {
            "name": self.card.name,
            "memory_size": config.memory_size,
            "icache_lines": config.icache_lines,
            "dcache_lines": config.dcache_lines,
            "words_per_line": config.words_per_line,
            "parity_checking": config.parity_checking,
            "chains": {
                name: chain.describe()
                for name, chain in self.card.chains.items()
            },
        }

    # ------------------------------------------------------------------
    # Golden-run checkpointing (warm-start blocks)
    # ------------------------------------------------------------------

    def capture_checkpoint(self) -> CheckpointTick:
        """Snapshot the stopped card: full CPU state, the environment
        simulator (pickled), and the memory pages dirtied since the
        previous capture (the first capture seeds from every non-zero
        page, i.e. the whole downloaded image)."""
        memory = self.card.cpu.memory
        if not self._checkpointing:
            # First capture of this reference run: everything written
            # since reset is "dirty", then switch to incremental deltas.
            memory.start_dirty_tracking()
            self._checkpointing = True
            self._checkpoint_pages = set()
            dirty = memory.nonzero_pages()
        else:
            dirty = memory.drain_dirty_pages()
        self._checkpoint_pages |= dirty
        env_blob = pickle.dumps(
            self._environment, protocol=pickle.HIGHEST_PROTOCOL
        )
        payload = {
            "cpu": self.card.cpu.snapshot(),
            "protected": list(memory.protected_range()),
            "environment": env_blob,
        }
        pages = {page: memory.read_page(page) for page in sorted(dirty)}
        fingerprint = self._checkpoint_fingerprint(
            sorted(self._checkpoint_pages), env_blob
        )
        return CheckpointTick(
            cycle=self.card.cpu.cycles,
            payload=payload,
            dirty_pages=pages,
            fingerprint=fingerprint,
            core_fingerprint=self._core_fingerprint(),
        )

    def restore_checkpoint(self, image: RestoreImage) -> None:
        """Load a reference-run checkpoint into the card and verify the
        restored state's fingerprint against the capture-time one."""
        memory = self.card.cpu.memory
        memory.stop_dirty_tracking()
        self._checkpointing = False
        self._checkpoint_pages = set(image.pages)
        # Memory: reset to all-zero (pages absent from the cumulative
        # image were all-zero at capture time by the reset contract),
        # then replay the page images.
        memory.reset()
        for page, words in image.pages.items():
            memory.load_page(page, words)
        # CPU core, caches, pipeline, bus-force state.
        self.card.cpu.restore(image.payload["cpu"])
        # Write protection (memory.reset() cleared it).
        lo, hi = image.payload["protected"]
        if lo <= hi:
            memory.protect(lo, hi)
        else:
            memory.unprotect()
        # Card-level state the cold prefix would have set.
        workload = self._require_workload()
        self.card.program = workload.program
        self.card.set_breakpoints([])
        # Environment simulator at its checkpoint-instant state.
        environment = pickle.loads(image.payload["environment"])
        self._environment = environment
        self.card.on_sync = (
            environment.exchange if environment is not None else None
        )
        # Host-side per-experiment state (same as init_test_card).
        self._detail_states = []
        self._instrumenter = None
        self._tracing = False
        self._detail = False
        # Verify: recompute the fingerprint over the *live* restored
        # state and compare with the capture-time digest.
        restored_blob = pickle.dumps(
            self._environment, protocol=pickle.HIGHEST_PROTOCOL
        )
        fingerprint = self._checkpoint_fingerprint(
            sorted(image.pages), restored_blob
        )
        if fingerprint != image.fingerprint:
            raise CheckpointMismatch(
                f"restore fingerprint mismatch at cycle {image.cycle}: "
                f"{fingerprint[:12]} != {image.fingerprint[:12]}"
            )

    # ------------------------------------------------------------------
    # Divergence-window blocks (faulty-run digest probing)
    # ------------------------------------------------------------------

    def start_divergence_tracking(self) -> None:
        """Arm the faulty run for digest probing: establish the same
        cumulative dirty-page set the golden fingerprints cover (a warm
        restore already seeded it from the restore image; a cold start
        seeds it from every non-zero page, exactly like the reference
        run's first capture) and begin tracking writes."""
        memory = self.card.cpu.memory
        if not self._checkpoint_pages:
            self._checkpoint_pages = set(memory.nonzero_pages())
        memory.start_dirty_tracking()

    def capture_core_digest(self) -> str:
        """Cheap pre-filter digest of the faulty card (CPU core only —
        a strict subset of :meth:`capture_state_digest`'s coverage, so a
        mismatch here proves the full digests mismatch too). Roughly 5x
        cheaper than the full fingerprint; the divergence-window runner
        uses it to reject still-diverged probes without hashing memory
        pages and scan chains."""
        return self._core_fingerprint()

    def capture_state_digest(self) -> str:
        """Fingerprint of the stopped faulty card, computed exactly like
        a golden tick's: fold pages dirtied since the last probe into
        the cumulative set and digest. Purely observational — nothing is
        reset beyond draining the dirty set, so probing never perturbs
        the run it is probing."""
        memory = self.card.cpu.memory
        self._checkpoint_pages |= memory.drain_dirty_pages()
        env_blob = pickle.dumps(
            self._environment, protocol=pickle.HIGHEST_PROTOCOL
        )
        return self._checkpoint_fingerprint(
            sorted(self._checkpoint_pages), env_blob
        )

    def _core_fingerprint(self) -> str:
        """Digest of the run counters and the full CPU snapshot — every
        part appears verbatim in :meth:`_checkpoint_fingerprint`, which
        is what makes the cheap-rejection contract sound."""
        cpu = self.card.cpu
        return state_digest(
            {
                "cycles": cpu.cycles,
                "instret": cpu.instret,
                "iterations": cpu.iterations,
                "halted": cpu.halted,
                "cpu": cpu.snapshot(),
            }
        )

    def _checkpoint_fingerprint(
        self, pages: Sequence[int], env_blob: bytes
    ) -> str:
        """Canonical digest of the card's full live state: run counters,
        the complete CPU snapshot, every scan-visible cell, the listed
        memory pages, the protection range and the environment
        simulator. Computed identically at capture and after restore —
        any divergence trips the cold fallback.

        The full ``cpu.snapshot()`` (not just the scan-visible chains)
        makes the digest *total* with respect to future execution —
        pipeline force flags and the last-executed-instruction record
        are not scan-mapped but do shape what runs next. Totality is
        what lets the divergence-window runner treat digest equality as
        proof of re-convergence (checkpoint format v2).

        Since checkpoint format v3 the bulk parts are contiguous
        buffers hashed zero-copy: chains contribute
        :meth:`~repro.thor.scanchain.ScanChain.capture_words` arrays
        (cell order is structural, so values alone identify the state)
        and memory pages arrive as ``array`` slices from
        :meth:`~repro.thor.memory.Memory.read_page`."""
        cpu = self.card.cpu
        memory = cpu.memory
        parts = {
            "cycles": cpu.cycles,
            "instret": cpu.instret,
            "iterations": cpu.iterations,
            "halted": cpu.halted,
            "cpu": cpu.snapshot(),
            "chains": {
                name: chain.capture_words()
                for name, chain in self.card.chains.items()
            },
            "pages": {page: memory.read_page(page) for page in pages},
            "protected": list(memory.protected_range()),
            "environment": env_blob,
        }
        return state_digest(parts)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _require_workload(self) -> WorkloadDefinition:
        if self._workload is None:
            raise CampaignError("no workload loaded; call read_campaign_data")
        return self._workload

    @staticmethod
    def _memory_location_address(location: FaultLocation) -> int:
        match = _MEM_PATH_RE.match(location.path)
        if not match:
            raise CampaignError(f"bad memory location {location.key()}")
        return int(match.group(1), 16)
