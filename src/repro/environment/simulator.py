"""Environment-simulator framework: the host side of the data exchange."""

from __future__ import annotations

import abc
from typing import Dict

from repro.thor.memory import ENV_INPUT_BASE, ENV_OUTPUT_BASE
from repro.util.bits import to_signed, to_unsigned
from repro.util.errors import ConfigurationError

Q8 = 256.0


def q8_encode(value: float) -> int:
    """Engineering value -> Q8 two's-complement word."""
    return to_unsigned(int(round(value * Q8)))


def q8_decode(word: int) -> float:
    """Q8 two's-complement word -> engineering value."""
    return to_signed(word) / Q8


class EnvironmentSimulator(abc.ABC):
    """Base class: plant model stepped once per workload loop iteration.

    Subclasses implement :meth:`step` (read actuation, advance the plant,
    return the new sensor readings) and may extend :meth:`summary` with
    model-specific dependability metrics.
    """

    def __init__(
        self,
        input_base: int = ENV_INPUT_BASE,
        output_base: int = ENV_OUTPUT_BASE,
    ):
        self.input_base = input_base
        self.output_base = output_base
        self.iterations = 0
        self.max_abs_error = 0.0
        self.sum_abs_error = 0.0

    # -- target-facing protocol ------------------------------------------------

    def initialize(self, card) -> None:
        """Write the first sensor values before the workload starts."""
        self.iterations = 0
        self.max_abs_error = 0.0
        self.sum_abs_error = 0.0
        self.reset_plant()
        self._write_inputs(card, *self.sensor_values())

    def exchange(self, card, iteration: int) -> None:
        """SYNC-boundary data exchange (installed as the test card's
        on_sync hook)."""
        actuation = q8_decode(card.read_memory(self.output_base))
        self.step(actuation)
        self.iterations = iteration
        error = abs(self.tracking_error())
        self.max_abs_error = max(self.max_abs_error, error)
        self.sum_abs_error += error
        self._write_inputs(card, *self.sensor_values())

    def _write_inputs(self, card, setpoint: float, measured: float) -> None:
        card.write_memory(self.input_base, q8_encode(setpoint))
        card.write_memory(self.input_base + 1, q8_encode(measured))

    # -- plant model interface ----------------------------------------------------

    @abc.abstractmethod
    def reset_plant(self) -> None:
        """Reset the plant to its initial condition."""

    @abc.abstractmethod
    def step(self, actuation: float) -> None:
        """Advance the plant one control period under ``actuation``."""

    @abc.abstractmethod
    def sensor_values(self) -> tuple:
        """Current (setpoint, measured output)."""

    @abc.abstractmethod
    def tracking_error(self) -> float:
        """Setpoint minus measured output, engineering units."""

    # -- dependability metrics ------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        mean = self.sum_abs_error / self.iterations if self.iterations else 0.0
        return {
            "iterations": float(self.iterations),
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": mean,
        }


_ENVIRONMENTS: Dict[str, type] = {}


def register_environment(name: str):
    def decorator(cls):
        if name in _ENVIRONMENTS:
            raise ConfigurationError(f"environment {name!r} already registered")
        _ENVIRONMENTS[name] = cls
        cls.environment_name = name
        return cls

    return decorator


def build_environment(name: str, params: dict = None) -> EnvironmentSimulator:
    cls = _ENVIRONMENTS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown environment {name!r}; available: {sorted(_ENVIRONMENTS)}"
        )
    return cls(**(params or {}))
