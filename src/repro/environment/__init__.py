"""Environment simulators (paper Figure 1, Section 3.2).

"During each loop iteration, data may be exchanged with a user provided
environment simulator emulating the target system environment." The
simulator runs on the host; at every SYNC boundary it reads the target's
OUTPUT memory window, advances a plant model by one control period and
writes fresh sensor values into the INPUT window.
"""

from repro.environment.simulator import EnvironmentSimulator, build_environment
from repro.environment.plants import DCMotorEnv, InvertedPendulumEnv

__all__ = [
    "EnvironmentSimulator",
    "build_environment",
    "DCMotorEnv",
    "InvertedPendulumEnv",
]
