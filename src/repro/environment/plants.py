"""Plant models for the environment simulator.

Both plants are deliberately simple, well-conditioned models whose
closed-loop behaviour under the Q8 PID controller is easy to reason
about; the point is not plant fidelity but a realistic *consequence
model* for escaped errors — a corrupted actuation value drives the plant
away from its setpoint, which the campaign analysis classifies as a
critical (control-loss) failure when the deviation exceeds a bound.
"""

from __future__ import annotations

from repro.environment.simulator import EnvironmentSimulator, register_environment


@register_environment("dc-motor")
class DCMotorEnv(EnvironmentSimulator):
    """First-order DC motor speed loop:  tau * y' = -y + k * u."""

    def __init__(
        self,
        k: float = 1.0,
        tau: float = 0.25,
        dt: float = 0.05,
        setpoint: float = 20.0,
        initial: float = 0.0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.k = k
        self.tau = tau
        self.dt = dt
        self.setpoint = setpoint
        self.initial = initial
        self.y = initial

    def reset_plant(self) -> None:
        self.y = self.initial

    def step(self, actuation: float) -> None:
        self.y += self.dt / self.tau * (-self.y + self.k * actuation)

    def sensor_values(self) -> tuple:
        return (self.setpoint, self.y)

    def tracking_error(self) -> float:
        return self.setpoint - self.y


@register_environment("inverted-pendulum")
class InvertedPendulumEnv(EnvironmentSimulator):
    """Linearised inverted pendulum:  theta'' = a*theta + b*u.

    Open-loop unstable (a > 0), so an escaped error in the controller can
    genuinely lose the plant — the sharpest consequence model available
    for the E6 experiment. ``theta`` is clamped to +-clamp to keep the
    Q8 encoding finite after control loss.
    """

    def __init__(
        self,
        a: float = 2.0,
        b: float = 4.0,
        dt: float = 0.02,
        setpoint: float = 0.0,
        initial: float = 0.2,
        clamp: float = 8.0e3,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.a = a
        self.b = b
        self.dt = dt
        self.setpoint = setpoint
        self.initial = initial
        self.clamp = clamp
        self.theta = initial
        self.omega = 0.0

    def reset_plant(self) -> None:
        self.theta = self.initial
        self.omega = 0.0

    def step(self, actuation: float) -> None:
        accel = self.a * self.theta + self.b * actuation
        self.omega += self.dt * accel
        self.theta += self.dt * self.omega
        if abs(self.theta) > self.clamp:
            self.theta = self.clamp if self.theta > 0 else -self.clamp
            self.omega = 0.0

    def sensor_values(self) -> tuple:
        return (self.setpoint, self.theta)

    def tracking_error(self) -> float:
        return self.setpoint - self.theta
