"""Pre-runtime SWIFI: bit manipulation of the downloaded workload image."""

from __future__ import annotations

from typing import Tuple

from repro.core.faultmodels import apply_op
from repro.util.bits import bit_get, bit_set


def flip_image_bit(card, address: int, bit: int, op: str = "flip") -> Tuple[int, int]:
    """Apply ``op`` to one bit of the word at ``address`` through the test
    card's download port (before execution starts, so no cache coherence
    concerns exist yet).

    Returns ``(bit_before, bit_after)``.
    """
    word = card.read_memory(address)
    before = bit_get(word, bit)
    after = apply_op(before, op)
    card.write_memory(address, bit_set(word, bit, after))
    return before, after
