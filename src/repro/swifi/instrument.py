"""Runtime SWIFI: trap-based workload instrumentation.

The injector plants a TRAP instruction (reserved code 63) at the address
that executes at the planned injection time. When the trap fires, the
handler — standing in for the instrumentation code a real runtime-SWIFI
tool links into the workload — restores the original instruction, applies
the bit flips to software-visible state (registers or memory) and resumes
the workload at the same PC.

Occurrence targeting: the planted address may execute several times before
the planned instant. The instrumenter counts trap hits; for a skipped
occurrence it restores the original instruction, lets it execute once
(single step), then re-plants the trap — exactly the dance a
debugger-based injector performs on real hardware.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.experiment import Injection
from repro.core.faultmodels import InjectionAction, InjectionPlan, apply_op
from repro.core.trace import Trace
from repro.thor import isa
from repro.thor.isa import Instruction, Opcode, assemble_word
from repro.util.bits import bit_get, bit_set
from repro.util.errors import CampaignError

SWIFI_TRAP_CODE = 63

_SWREG_RE = re.compile(r"^cpu\.regfile\.r(\d+)$")
_MEM_PATH_RE = re.compile(r"^word\.0x([0-9a-fA-F]+)$")


@dataclass
class _PlantedTrap:
    original: int
    action: InjectionAction
    target_occurrence: int
    hits: int = 0
    armed: bool = True


def _trap_word() -> int:
    return assemble_word(Instruction(Opcode.TRAP, imm=SWIFI_TRAP_CODE))


def _invalidate_cached_word(cache, address: int) -> None:
    tag, index, _ = cache.split(address)
    line = cache.lines[index]
    if line.valid and line.tag == tag:
        line.valid = False


@dataclass
class TrapInstrumenter:
    """One experiment's worth of runtime-SWIFI instrumentation."""

    card: object
    injections: List[Injection] = field(default_factory=list)
    _planted: Dict[int, _PlantedTrap] = field(default_factory=dict)
    _replant_pc: Optional[int] = None

    # ------------------------------------------------------------------
    # Planting
    # ------------------------------------------------------------------

    def instrument(self, plan: InjectionPlan, trace: Trace) -> None:
        """Place a trap for every action of the plan, using the reference
        trace to find the instruction executing at each injection time and
        its occurrence index."""
        for action in plan.sorted_actions():
            step = trace.step_after_cycle(action.time)
            if step is None:
                if not trace.steps:
                    raise CampaignError("empty reference trace")
                step = trace.steps[-1]
            pc = step.pc
            earlier = sum(1 for s in trace.steps[: step.index] if s.pc == pc)
            self._plant(pc, action, earlier + 1)

    def _plant(self, pc: int, action: InjectionAction, occurrence: int) -> None:
        original = self.card.read_memory(pc)
        self.card.write_memory(pc, _trap_word())
        _invalidate_cached_word(self.card.cpu.icache, pc)
        self._planted[pc] = _PlantedTrap(
            original=original, action=action, target_occurrence=occurrence
        )

    # ------------------------------------------------------------------
    # Trap servicing (installed as the test card's trap hook)
    # ------------------------------------------------------------------

    def handle_trap(self, card, trap_event) -> bool:
        """Returns True when the trap was a SWIFI trap and was serviced."""
        if trap_event.code != SWIFI_TRAP_CODE:
            return False
        pc = card.cpu.pc
        planted = self._planted.get(pc)
        if planted is None or not planted.armed:
            return False
        planted.hits += 1
        card.write_memory(pc, planted.original)
        _invalidate_cached_word(card.cpu.icache, pc)
        if planted.hits >= planted.target_occurrence:
            planted.armed = False
            self._apply(planted.action, card)
        else:
            # Wrong occurrence: run the original instruction once, then
            # re-plant (completed in on_step).
            self._replant_pc = pc
        return True

    def on_step(self, card) -> None:
        """Re-plant a trap skipped at the previous step, if any."""
        if self._replant_pc is None:
            return
        pc = self._replant_pc
        self._replant_pc = None
        planted = self._planted[pc]
        planted.original = card.read_memory(pc)
        card.write_memory(pc, _trap_word())
        _invalidate_cached_word(card.cpu.icache, pc)

    # ------------------------------------------------------------------
    # The injection itself (what the instrumentation code would do)
    # ------------------------------------------------------------------

    def _apply(self, action: InjectionAction, card) -> None:
        for location in action.locations:
            if location.space == "swreg":
                match = _SWREG_RE.match(location.path)
                if not match:
                    raise CampaignError(
                        f"runtime SWIFI cannot reach {location.key()}"
                    )
                index = int(match.group(1))
                word = card.cpu.regs.read(index)
                before = bit_get(word, location.bit)
                after = apply_op(before, action.op)
                card.cpu.regs.write(index, bit_set(word, location.bit, after))
            elif location.space.startswith("memory:"):
                match = _MEM_PATH_RE.match(location.path)
                if not match:
                    raise CampaignError(f"bad memory location {location.key()}")
                address = int(match.group(1), 16)
                word = card.read_memory(address)
                before = bit_get(word, location.bit)
                after = apply_op(before, action.op)
                card.write_memory(address, bit_set(word, location.bit, after))
                _invalidate_cached_word(card.cpu.dcache, address)
                _invalidate_cached_word(card.cpu.icache, address)
            else:
                raise CampaignError(
                    f"runtime SWIFI cannot reach {location.key()}"
                )
            self.injections.append(
                Injection(
                    time=card.cpu.cycles,
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
