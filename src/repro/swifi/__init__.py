"""SWIFI: Software-Implemented Fault Injection.

Two flavours, matching the paper:

* **pre-runtime** (shipped in GOOFI): "faults are injected into the
  program and data areas of the target system before it starts to
  execute" — :mod:`repro.swifi.preruntime` flips bits of the downloaded
  image through the test card's download port.
* **runtime** (Section 4 extension): "the target system workload is
  instrumented with additional software for injecting faults" —
  :mod:`repro.swifi.instrument` plants TRAP instructions at the injection
  point; the trap handler flips the targeted software-visible state and
  resumes the workload.
"""

from repro.swifi.instrument import SWIFI_TRAP_CODE, TrapInstrumenter
from repro.swifi.preruntime import flip_image_bit

__all__ = ["TrapInstrumenter", "SWIFI_TRAP_CODE", "flip_image_bit"]
