"""Error-detection latency analysis.

For every *detected* error, the latency is the number of target cycles
between the fault's injection instant and the moment the error-detection
mechanism fired (the trap cycle recorded in the termination). Detection
latency is a standard dependability measure alongside coverage: a
mechanism that detects late lets the error propagate further before the
system can react, which matters for recovery-oriented designs like the
paper's companion control application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.experiment import ExperimentResult


@dataclass
class LatencySample:
    """One detected error's latency."""

    experiment: str
    mechanism: str
    injection_cycle: int
    detection_cycle: int

    @property
    def latency(self) -> int:
        return max(0, self.detection_cycle - self.injection_cycle)


@dataclass
class LatencyReport:
    """Detection-latency distribution of one campaign."""

    samples: List[LatencySample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def latencies(self, mechanism: Optional[str] = None) -> List[int]:
        return [
            sample.latency
            for sample in self.samples
            if mechanism is None or sample.mechanism == mechanism
        ]

    def mechanisms(self) -> List[str]:
        return sorted({sample.mechanism for sample in self.samples})

    @staticmethod
    def _percentile(values: List[int], fraction: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = fraction * (len(ordered) - 1)
        low = int(index)
        high = min(low + 1, len(ordered) - 1)
        weight = index - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    def summary(self, mechanism: Optional[str] = None) -> Dict[str, float]:
        values = self.latencies(mechanism)
        if not values:
            return {"count": 0, "min": 0.0, "median": 0.0, "p90": 0.0,
                    "max": 0.0, "mean": 0.0}
        return {
            "count": len(values),
            "min": float(min(values)),
            "median": self._percentile(values, 0.5),
            "p90": self._percentile(values, 0.9),
            "max": float(max(values)),
            "mean": sum(values) / len(values),
        }

    def render(self) -> str:
        lines = [
            "Detection latency (cycles from injection to trap)",
            f"{'mechanism':20s} {'n':>4s} {'min':>7s} {'median':>8s} "
            f"{'p90':>8s} {'max':>8s} {'mean':>8s}",
            "-" * 68,
        ]
        for mechanism in ["(all)"] + self.mechanisms():
            selector = None if mechanism == "(all)" else mechanism
            stats = self.summary(selector)
            lines.append(
                f"{mechanism:20s} {stats['count']:>4d} {stats['min']:>7.0f} "
                f"{stats['median']:>8.1f} {stats['p90']:>8.1f} "
                f"{stats['max']:>8.0f} {stats['mean']:>8.1f}"
            )
        return "\n".join(lines)


def detection_latency(results: Sequence[ExperimentResult]) -> LatencyReport:
    """Collect detection latencies from a campaign's detected errors.

    Experiments that were not detected, or whose injection record is
    missing, contribute nothing. For multi-injection experiments the
    *first* injection instant is used (the earliest possible activation).
    """
    report = LatencyReport()
    for result in results:
        termination = result.termination
        if termination is None or termination.kind != "trap":
            continue
        if not result.injections:
            continue
        injection_cycle = min(injection.time for injection in result.injections)
        report.samples.append(
            LatencySample(
                experiment=result.name,
                mechanism=termination.trap_name,
                injection_cycle=injection_cycle,
                detection_cycle=termination.cycle,
            )
        )
    return report
