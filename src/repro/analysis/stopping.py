"""Sequential stopping advice for running campaigns.

ZOFI-style campaign sizing (PAPERS.md): a campaign should stop as soon
as the confidence interval around the figure it exists to measure is
tight enough, not after an a-priori experiment count. The advisor folds
the current sample into a simple rule —

    stop when the CI half-width ≤ ε at confidence c

— and, while the target is not yet met, estimates how many more trials
the normal-approximation sample-size formula says are needed. The
streaming analytics engine recomputes this per batch and exports the
half-width as the live ``analysis.ci_half_width`` gauge, so the fabric
progress display and the health monitor can show "how close to done is
the *statistics*" next to "how close to done is the *row count*".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.analysis.coverage import wilson_interval
from repro.analysis.faultspace import required_experiments

__all__ = ["StoppingAdvice", "stopping_advice"]


@dataclass(frozen=True)
class StoppingAdvice:
    """Whether a campaign's interval is tight enough to stop."""

    metric: str
    successes: int
    trials: int
    estimate: float
    half_width: float
    target_half_width: float
    confidence: float
    satisfied: bool
    #: Estimated further trials (of the same denominator) needed to
    #: reach the target half-width; 0 once satisfied.
    additional_trials: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "successes": self.successes,
            "trials": self.trials,
            "estimate": self.estimate,
            "half_width": self.half_width,
            "target_half_width": self.target_half_width,
            "confidence": self.confidence,
            "satisfied": self.satisfied,
            "additional_trials": self.additional_trials,
        }

    def describe(self) -> str:
        verdict = (
            "stop: interval is tight enough"
            if self.satisfied
            else f"continue: ~{self.additional_trials} more trials needed"
        )
        return (
            f"{self.metric}: half-width {self.half_width:.4f} vs target "
            f"{self.target_half_width:.4f} @{self.confidence:.0%} "
            f"({self.successes}/{self.trials}) -> {verdict}"
        )


def stopping_advice(
    successes: int,
    trials: int,
    target_half_width: float = 0.05,
    confidence: float = 0.95,
    metric: str = "detection_coverage",
) -> StoppingAdvice:
    """Evaluate the sequential stopping rule for one proportion.

    The half-width is taken from the Wilson interval (the same interval
    the reports quote), so the advice and the displayed interval can
    never disagree. With no trials yet the half-width is the vacuous
    0.5 and the advisor asks for the worst-case ``p = 0.5`` sample size.
    """
    if not 0.0 < target_half_width < 1.0:
        raise ValueError(
            f"target half-width must be in (0, 1): {target_half_width}"
        )
    lo, hi = wilson_interval(successes, trials, confidence)
    half_width = (hi - lo) / 2.0
    estimate = successes / trials if trials else 0.0
    satisfied = trials > 0 and half_width <= target_half_width
    if satisfied:
        additional = 0
    else:
        # Planning estimate: clamp p away from the boundary so a lucky
        # early 0/5 never claims one more experiment will do.
        p = estimate if trials else 0.5
        p = min(max(p, 0.05), 0.95)
        needed = required_experiments(p, target_half_width, confidence)
        additional = max(1, needed - trials)
    return StoppingAdvice(
        metric=metric,
        successes=successes,
        trials=trials,
        estimate=estimate,
        half_width=half_width,
        target_half_width=target_half_width,
        confidence=confidence,
        satisfied=satisfied,
        additional_trials=additional,
    )
