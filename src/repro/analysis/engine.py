"""Streaming campaign analytics (the ``goofi analyze`` backend).

The paper's analysis phase runs after a campaign finishes, over the full
result set, with tailor-made scripts. This engine instead consumes
experiment rows in batched read-only cursors
(:meth:`repro.db.database.GoofiDatabase.iter_experiments` over a
``mode=ro`` WAL connection), so a report can be computed *while the
campaign is still running* without ever blocking the writer, in O(1)
memory per row.

One pass accumulates everything the report needs:

* the outcome mix (Section 3.4 taxonomy) with both Wilson and exact
  Clopper-Pearson intervals on detection coverage and effectiveness;
* coverage broken down by fault-location cell and by injection
  technique (fault-model operation);
* a location × injection-time heatmap of effective errors and, when
  detail rows are present, a state-cell × execution-time
  error-propagation heatmap;
* equivalence accounting (executed vs. statically derived rows);
* sequential stopping advice (stop when the detection-coverage CI
  half-width ≤ ε at confidence c), also exported live through the
  ``analysis.ci_half_width`` gauge.

Reports serialise deterministically (:meth:`CampaignReport.to_dict`
contains no timestamps or wall-clock figures), so the CLI's ``--json``
output and the fabric's ``/jobs/<id>/analysis`` payload for the same
database state compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Set

from repro.analysis.classify import (
    CampaignClassification,
    Outcome,
    classify_experiment,
)
from repro.analysis.coverage import CoverageEstimate
from repro.analysis.heatmap import OutcomeHeatmap, PropagationHeatmap, _cell_of
from repro.analysis.intervals import clopper_pearson_interval
from repro.analysis.report import render_campaign_report, report_to_dict
from repro.analysis.stopping import StoppingAdvice, stopping_advice
from repro.observability.runmeta import campaign_config_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db imports us not)
    from repro.db.database import GoofiDatabase

__all__ = ["CampaignReport", "analyze_campaign"]


def _group_stats() -> Dict[str, int]:
    return {"total": 0, "effective": 0, "detected": 0}


@dataclass
class CampaignReport:
    """Everything one streaming pass over a campaign produced."""

    campaign_name: str
    config_hash: str
    confidence: float
    target_half_width: float
    summary: CampaignClassification
    stopping: StoppingAdvice
    heatmap: OutcomeHeatmap
    propagation: PropagationHeatmap
    #: location cell -> {total, effective, detected}
    by_location: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: injection technique (fault-model op) -> {total, effective, detected}
    by_technique: Dict[str, Dict[str, int]] = field(default_factory=dict)
    n_executed: int = 0
    n_derived: int = 0
    n_representatives: int = 0

    @property
    def total(self) -> int:
        return self.summary.total

    def _exact(self, successes: int, trials: int) -> List[float]:
        return list(
            clopper_pearson_interval(successes, trials, self.confidence)
        )

    @staticmethod
    def _breakdown(
        groups: Dict[str, Dict[str, int]]
    ) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for label in sorted(groups):
            stats = groups[label]
            effective = stats["effective"]
            out[label] = {
                "total": stats["total"],
                "effective": effective,
                "detected": stats["detected"],
                "detection_coverage": (
                    stats["detected"] / effective if effective else 0.0
                ),
            }
        return out

    def to_dict(self) -> Dict[str, Any]:
        base = report_to_dict(
            self.campaign_name, self.summary, self.confidence
        )
        base["detection_coverage"]["exact_interval"] = self._exact(
            self.summary.detected, self.summary.effective
        )
        base["effectiveness_ratio"]["exact_interval"] = self._exact(
            self.summary.effective, self.summary.total
        )
        base.update(
            {
                "config_hash": self.config_hash,
                "equivalence": {
                    "executed": self.n_executed,
                    "derived": self.n_derived,
                    "representatives": self.n_representatives,
                    "derived_fraction": (
                        self.n_derived / self.total if self.total else 0.0
                    ),
                },
                "by_location": self._breakdown(self.by_location),
                "by_technique": self._breakdown(self.by_technique),
                "heatmap": self.heatmap.to_dict(),
                "propagation": self.propagation.to_dict(),
                "stopping": self.stopping.to_dict(),
            }
        )
        return base

    def render(self) -> str:
        lines = [
            render_campaign_report(
                self.campaign_name, self.summary, self.confidence
            )
        ]
        detection = CoverageEstimate(
            self.summary.detected, self.summary.effective, self.confidence
        )
        exact = self._exact(self.summary.detected, self.summary.effective)
        lines.append(
            f"exact (Clopper-Pearson) detection coverage: "
            f"{detection.estimate:.3f} [{exact[0]:.3f}, {exact[1]:.3f}] "
            f"@{self.confidence:.0%}"
        )
        lines.append(
            f"equivalence: {self.n_executed} executed + {self.n_derived} "
            f"derived from {self.n_representatives} representatives"
        )
        lines.append(f"config hash: {self.config_hash[:16]}…")
        lines.append(f"stopping advice: {self.stopping.describe()}")
        if self.by_technique:
            lines.append("")
            lines.append(
                f"{'technique':24s} {'total':>6s} {'effect':>7s} "
                f"{'detect':>7s} {'cov':>7s}"
            )
            for label, row in self._breakdown(self.by_technique).items():
                lines.append(
                    f"{label:24s} {row['total']:6d} {row['effective']:7d} "
                    f"{row['detected']:7d} {row['detection_coverage']:6.1%}"
                )
        lines.append("")
        lines.append(self.heatmap.render())
        if self.propagation.n_traces:
            lines.append("")
            lines.append(self.propagation.render())
        return "\n".join(lines)


def _update_gauges(detected: int, effective: int, rows: int,
                   confidence: float) -> None:
    """Export live analytics state; no-ops when observability is off."""
    from repro.observability import get_observability

    metrics = get_observability().metrics
    if not metrics.enabled:
        return
    half = stopping_advice(detected, effective, 0.5, confidence).half_width
    metrics.gauge("analysis.ci_half_width").set(half)
    metrics.gauge("analysis.rows_processed").set(rows)


def analyze_campaign(
    db: "GoofiDatabase",
    campaign_name: str,
    *,
    confidence: float = 0.95,
    epsilon: float = 0.05,
    batch_size: int = 512,
    time_bins: int = 12,
    max_rows: int = 16,
    max_detail_traces: int = 32,
) -> CampaignReport:
    """One streaming pass over ``campaign_name``'s logged experiments.

    Safe against a live writer: run it on a ``readonly=True`` database
    handle and it sees the last committed WAL snapshot. ``epsilon`` is
    the sequential-stopping target half-width for detection coverage.
    """
    reference = db.load_reference(campaign_name)
    config_hash = campaign_config_hash(db.load_campaign(campaign_name))
    max_time = max(1, reference.duration_cycles)

    summary = CampaignClassification()
    heatmap = OutcomeHeatmap(max_time, time_bins=time_bins, max_rows=max_rows)
    propagation = PropagationHeatmap(time_bins=time_bins, max_rows=max_rows)
    by_location: Dict[str, Dict[str, int]] = {}
    by_technique: Dict[str, Dict[str, int]] = {}
    representatives: Set[str] = set()
    n_derived = 0
    detail_traces = 0

    for result in db.iter_experiments(campaign_name, batch_size=batch_size):
        classification = classify_experiment(result, reference)
        outcome = classification.outcome
        summary.total += 1
        summary.counts[outcome] = summary.counts.get(outcome, 0) + 1
        if outcome is Outcome.DETECTED:
            summary.detections_by_mechanism[classification.mechanism] = (
                summary.detections_by_mechanism.get(
                    classification.mechanism, 0
                )
                + 1
            )
        if result.derived_from is not None:
            n_derived += 1
            representatives.add(result.derived_from)
        if result.injections:
            injection = result.injections[0]
            key = injection.location.key()
            heatmap.add(
                key,
                injection.time,
                outcome.is_effective,
                outcome is Outcome.DETECTED,
            )
            for groups, label in (
                (by_location, _cell_of(key)),
                (by_technique, injection.op),
            ):
                stats = groups.setdefault(label, _group_stats())
                stats["total"] += 1
                if outcome.is_effective:
                    stats["effective"] += 1
                if outcome is Outcome.DETECTED:
                    stats["detected"] += 1
        if (
            detail_traces < max_detail_traces
            and result.detail_states
            and reference.detail_states
        ):
            propagation.add_trace(reference.detail_states, result.detail_states)
            detail_traces += 1
        if summary.total % batch_size == 0:
            _update_gauges(
                summary.detected, summary.effective, summary.total, confidence
            )

    advice = stopping_advice(
        summary.detected,
        summary.effective,
        target_half_width=epsilon,
        confidence=confidence,
    )
    _emit_final_metrics(advice, summary.total)
    return CampaignReport(
        campaign_name=campaign_name,
        config_hash=config_hash,
        confidence=confidence,
        target_half_width=epsilon,
        summary=summary,
        stopping=advice,
        heatmap=heatmap,
        propagation=propagation,
        by_location=by_location,
        by_technique=by_technique,
        n_executed=summary.total - n_derived,
        n_derived=n_derived,
        n_representatives=len(representatives),
    )


def _emit_final_metrics(advice: StoppingAdvice, rows: int) -> None:
    from repro.observability import get_observability

    metrics = get_observability().metrics
    if not metrics.enabled:
        return
    metrics.gauge("analysis.ci_half_width").set(advice.half_width)
    metrics.gauge("analysis.rows_processed").set(rows)
    metrics.counter("analysis.reports_total").inc()
