"""Error-propagation analysis of detail-mode traces (paper Section 3.3).

"In detail mode the system state is logged as frequently as the target
system allows, typically after the execution of each machine instruction
... The detail mode operation is used to produce an execution trace,
allowing the error propagation to be analysed in detail."

Given the per-instruction state logs of the reference run and of a
fault-injected run, this module locates the first architectural
divergence and follows the set of *infected* state cells over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.classify import diff_state_vectors

StateVector = Dict[str, int]


@dataclass
class PropagationReport:
    """How an injected error spread through the architectural state."""

    first_divergence_step: Optional[int]
    diverged: bool
    infected_counts: List[int] = field(default_factory=list)
    first_infected_cells: List[str] = field(default_factory=list)
    max_infected: int = 0
    final_infected: int = 0
    steps_compared: int = 0

    def describe(self) -> str:
        if not self.diverged:
            return (
                f"no divergence over {self.steps_compared} compared steps "
                "(fault overwritten or out of the observed state)"
            )
        return (
            f"diverged at step {self.first_divergence_step} in "
            f"{', '.join(self.first_infected_cells[:4])}"
            f"{'...' if len(self.first_infected_cells) > 4 else ''}; "
            f"peak {self.max_infected} infected cells, "
            f"{self.final_infected} at the end"
        )


def analyse_propagation(
    reference_states: Sequence[StateVector],
    experiment_states: Sequence[StateVector],
) -> PropagationReport:
    """Compare two detail-mode state logs step by step.

    Runs diverge in *length* as well (an injected fault changes control
    flow); comparison stops at the shorter log, and the infected-cell
    counts are reported per compared step.
    """
    steps = min(len(reference_states), len(experiment_states))
    infected_counts: List[int] = []
    first_divergence: Optional[int] = None
    first_cells: List[str] = []
    max_infected = 0
    for i in range(steps):
        diffs = diff_state_vectors(reference_states[i], experiment_states[i])
        infected_counts.append(len(diffs))
        if diffs and first_divergence is None:
            first_divergence = i
            first_cells = diffs
        max_infected = max(max_infected, len(diffs))
    # A length difference alone also counts as divergence (control flow
    # changed even if every compared state matched).
    diverged = first_divergence is not None or (
        len(reference_states) != len(experiment_states)
    )
    if first_divergence is None and diverged:
        first_divergence = steps
    return PropagationReport(
        first_divergence_step=first_divergence,
        diverged=diverged,
        infected_counts=infected_counts,
        first_infected_cells=first_cells,
        max_infected=max_infected,
        final_infected=infected_counts[-1] if infected_counts else 0,
        steps_compared=steps,
    )
