"""Analysis phase (paper Section 3.4).

Classifies every fault-injection experiment against the reference run:

* **Effective errors**
  * *Detected* — terminated by an error-detection mechanism, broken down
    per mechanism,
  * *Escaped* — wrong results (value failures) or timeliness violations,
* **Non-effective errors**
  * *Latent* — final state differs from the reference but outputs are
    correct and nothing detected,
  * *Overwritten* — no observable difference at all.

Plus coverage estimation with confidence intervals (Wilson and exact
Clopper-Pearson), detail-mode error-propagation analysis, and the
streaming analytics engine behind ``goofi analyze`` (sequential
stopping, heatmaps, cross-campaign diffing).
"""

from repro.analysis.classify import (
    CampaignClassification,
    Classification,
    Outcome,
    classify_campaign,
    classify_experiment,
)
from repro.analysis.coverage import (
    CoverageEstimate,
    detection_coverage,
    wilson_interval,
)
from repro.analysis.diff import CampaignDiff, MetricDelta, diff_reports
from repro.analysis.engine import CampaignReport, analyze_campaign
from repro.analysis.heatmap import OutcomeHeatmap, PropagationHeatmap
from repro.analysis.intervals import clopper_pearson_interval
from repro.analysis.latency import LatencyReport, detection_latency
from repro.analysis.propagation import PropagationReport, analyse_propagation
from repro.analysis.report import render_campaign_report
from repro.analysis.stopping import StoppingAdvice, stopping_advice

__all__ = [
    "Outcome",
    "Classification",
    "CampaignClassification",
    "classify_experiment",
    "classify_campaign",
    "CoverageEstimate",
    "wilson_interval",
    "clopper_pearson_interval",
    "detection_coverage",
    "PropagationReport",
    "analyse_propagation",
    "render_campaign_report",
    "LatencyReport",
    "detection_latency",
    "StoppingAdvice",
    "stopping_advice",
    "OutcomeHeatmap",
    "PropagationHeatmap",
    "CampaignReport",
    "analyze_campaign",
    "CampaignDiff",
    "MetricDelta",
    "diff_reports",
]
