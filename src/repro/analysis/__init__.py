"""Analysis phase (paper Section 3.4).

Classifies every fault-injection experiment against the reference run:

* **Effective errors**
  * *Detected* — terminated by an error-detection mechanism, broken down
    per mechanism,
  * *Escaped* — wrong results (value failures) or timeliness violations,
* **Non-effective errors**
  * *Latent* — final state differs from the reference but outputs are
    correct and nothing detected,
  * *Overwritten* — no observable difference at all.

Plus coverage estimation with confidence intervals and detail-mode
error-propagation analysis.
"""

from repro.analysis.classify import (
    CampaignClassification,
    Classification,
    Outcome,
    classify_campaign,
    classify_experiment,
)
from repro.analysis.coverage import (
    CoverageEstimate,
    detection_coverage,
    wilson_interval,
)
from repro.analysis.latency import LatencyReport, detection_latency
from repro.analysis.propagation import PropagationReport, analyse_propagation
from repro.analysis.report import render_campaign_report

__all__ = [
    "Outcome",
    "Classification",
    "CampaignClassification",
    "classify_experiment",
    "classify_campaign",
    "CoverageEstimate",
    "wilson_interval",
    "detection_coverage",
    "PropagationReport",
    "analyse_propagation",
    "render_campaign_report",
    "LatencyReport",
    "detection_latency",
]
