"""Outcome classification of fault-injection experiments."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.experiment import ExperimentResult, ReferenceRun
from repro.util.errors import CampaignError


class Outcome(enum.Enum):
    """The paper's Section 3.4 outcome classes."""

    DETECTED = "detected"
    ESCAPED_VALUE = "escaped_value"
    ESCAPED_TIMING = "escaped_timing"
    LATENT = "latent"
    OVERWRITTEN = "overwritten"

    @property
    def is_effective(self) -> bool:
        return self in (
            Outcome.DETECTED,
            Outcome.ESCAPED_VALUE,
            Outcome.ESCAPED_TIMING,
        )

    @property
    def is_escaped(self) -> bool:
        return self in (Outcome.ESCAPED_VALUE, Outcome.ESCAPED_TIMING)


@dataclass(frozen=True)
class Classification:
    """Outcome of one experiment, with the detecting mechanism if any."""

    outcome: Outcome
    mechanism: str = ""
    diff_cells: Tuple[str, ...] = ()
    wrong_outputs: Tuple[str, ...] = ()


# State-vector cells that legitimately differ between runs even when the
# fault had no effect (counters, latched status) are excluded from the
# latent/overwritten comparison.
_VOLATILE_SUFFIXES = (
    "cpu.cycle_counter",
    "cpu.instret_counter",
    "cpu.trap_status",
    "pins.sync_count",
    "pins.halt",
)


def _stable_items(vector: Dict[str, int]) -> Iterable[Tuple[str, int]]:
    for key, value in vector.items():
        if any(key.endswith(suffix) for suffix in _VOLATILE_SUFFIXES):
            continue
        yield key, value


def diff_state_vectors(
    reference: Dict[str, int], observed: Dict[str, int]
) -> List[str]:
    """Cells whose value differs (ignoring volatile counters)."""
    diffs = []
    observed_stable = dict(_stable_items(observed))
    for key, ref_value in _stable_items(reference):
        if observed_stable.get(key, ref_value) != ref_value:
            diffs.append(key)
    return sorted(diffs)


def diff_outputs(
    reference: Dict[str, int], observed: Dict[str, int]
) -> List[str]:
    wrong = []
    for key, ref_value in reference.items():
        if key.startswith("env."):
            # Environment metrics are judged by the consequence model in
            # the E6 analysis, not by exact equality (plant trajectories
            # under recovered faults legitimately differ slightly).
            continue
        if observed.get(key) != ref_value:
            wrong.append(key)
    return sorted(wrong)


def classify_experiment(
    result: ExperimentResult, reference: ReferenceRun
) -> Classification:
    """Classify one experiment against the campaign's reference run."""
    termination = result.termination
    if termination is None:
        raise CampaignError(f"experiment {result.name} has no termination")

    if termination.kind == "trap":
        return Classification(
            outcome=Outcome.DETECTED, mechanism=termination.trap_name
        )
    if termination.kind == "timeout":
        return Classification(outcome=Outcome.ESCAPED_TIMING)

    # Terminated like the reference did (halt / max_iterations): compare
    # outputs first, then the logged state.
    wrong = diff_outputs(reference.outputs, result.outputs)
    if wrong:
        return Classification(
            outcome=Outcome.ESCAPED_VALUE, wrong_outputs=tuple(wrong)
        )
    if termination.kind != reference.termination.kind:
        # e.g. a loop workload that HALTed instead of hitting the
        # iteration bound — behaviourally wrong even with matching memory.
        return Classification(outcome=Outcome.ESCAPED_TIMING)
    diffs = diff_state_vectors(reference.state_vector, result.state_vector)
    if diffs:
        return Classification(outcome=Outcome.LATENT, diff_cells=tuple(diffs))
    return Classification(outcome=Outcome.OVERWRITTEN)


@dataclass
class CampaignClassification:
    """Aggregated outcome distribution of one campaign."""

    total: int = 0
    counts: Dict[Outcome, int] = field(default_factory=dict)
    detections_by_mechanism: Dict[str, int] = field(default_factory=dict)
    per_experiment: List[Classification] = field(default_factory=list)

    def count(self, outcome: Outcome) -> int:
        return self.counts.get(outcome, 0)

    def fraction(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return self.count(outcome) / self.total

    @property
    def effective(self) -> int:
        return sum(
            count for outcome, count in self.counts.items()
            if outcome.is_effective
        )

    @property
    def non_effective(self) -> int:
        return self.total - self.effective

    @property
    def detected(self) -> int:
        return self.count(Outcome.DETECTED)

    @property
    def escaped(self) -> int:
        return self.count(Outcome.ESCAPED_VALUE) + self.count(
            Outcome.ESCAPED_TIMING
        )

    def as_rows(self) -> List[Tuple[str, int, float]]:
        """(label, count, fraction) rows in the paper's presentation order."""
        rows = [
            ("effective", self.effective,
             self.effective / self.total if self.total else 0.0),
            ("  detected", self.detected,
             self.fraction(Outcome.DETECTED)),
        ]
        for mechanism in sorted(self.detections_by_mechanism):
            count = self.detections_by_mechanism[mechanism]
            rows.append(
                (f"    by {mechanism}", count,
                 count / self.total if self.total else 0.0)
            )
        rows.extend(
            [
                ("  escaped (wrong results)",
                 self.count(Outcome.ESCAPED_VALUE),
                 self.fraction(Outcome.ESCAPED_VALUE)),
                ("  escaped (timeliness)",
                 self.count(Outcome.ESCAPED_TIMING),
                 self.fraction(Outcome.ESCAPED_TIMING)),
                ("non-effective", self.non_effective,
                 self.non_effective / self.total if self.total else 0.0),
                ("  latent", self.count(Outcome.LATENT),
                 self.fraction(Outcome.LATENT)),
                ("  overwritten", self.count(Outcome.OVERWRITTEN),
                 self.fraction(Outcome.OVERWRITTEN)),
            ]
        )
        return rows


def classify_campaign(
    results: Sequence[ExperimentResult],
    reference: ReferenceRun,
) -> CampaignClassification:
    summary = CampaignClassification(total=len(results))
    for result in results:
        classification = classify_experiment(result, reference)
        summary.per_experiment.append(classification)
        summary.counts[classification.outcome] = (
            summary.counts.get(classification.outcome, 0) + 1
        )
        if classification.outcome is Outcome.DETECTED:
            summary.detections_by_mechanism[classification.mechanism] = (
                summary.detections_by_mechanism.get(classification.mechanism, 0)
                + 1
            )
    return summary
