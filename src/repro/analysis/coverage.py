"""Coverage estimation with confidence intervals.

Fault-injection campaigns estimate error-detection coverage from a random
sample of the fault space; the point estimate alone is meaningless without
an interval. The Wilson score interval is used because campaign samples
are small-to-moderate and coverage is often near 1, where the normal
approximation misbehaves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.analysis.classify import CampaignClassification


@dataclass(frozen=True)
class CoverageEstimate:
    """A binomial proportion with its confidence interval."""

    successes: int
    trials: int
    confidence: float

    @property
    def estimate(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials, self.confidence)

    def __str__(self) -> str:
        lo, hi = self.interval
        return (
            f"{self.estimate:.3f} "
            f"[{lo:.3f}, {hi:.3f}] @{self.confidence:.0%} "
            f"({self.successes}/{self.trials})"
        )


_Z_TABLE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_value(confidence: float) -> float:
    z = _Z_TABLE.get(round(confidence, 2))
    if z is not None:
        return z
    # Beasley-Springer-Moro style rational approximation of the normal
    # quantile, good to ~1e-4 over the range campaigns use.
    p = 1 - (1 - confidence) / 2
    if not 0.5 < p < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    t = math.sqrt(-2.0 * math.log(1.0 - p))
    z = t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)
    return z


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(
            f"invalid binomial sample: {successes}/{trials}"
        )
    if trials == 0:
        return (0.0, 1.0)
    z = _z_value(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    lo = max(0.0, centre - margin)
    hi = min(1.0, centre + margin)
    # At the boundaries the Wilson endpoints are exactly 0/1; pin them so
    # floating-point rounding never excludes the point estimate.
    if successes == 0:
        lo = 0.0
    if successes == trials:
        hi = 1.0
    return (lo, hi)


def detection_coverage(
    summary: CampaignClassification, confidence: float = 0.95
) -> CoverageEstimate:
    """Error-detection coverage: detected / effective errors.

    This is the coverage figure the paper says feeds availability and
    reliability models — the probability that an *effective* error is
    caught by some error-detection mechanism.
    """
    return CoverageEstimate(
        successes=summary.detected,
        trials=summary.effective,
        confidence=confidence,
    )


def effectiveness_ratio(
    summary: CampaignClassification, confidence: float = 0.95
) -> CoverageEstimate:
    """Fraction of injected faults that became effective errors — the
    quantity pre-injection analysis tries to maximise (benchmark E5)."""
    return CoverageEstimate(
        successes=summary.effective,
        trials=summary.total,
        confidence=confidence,
    )
