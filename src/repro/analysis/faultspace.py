"""Fault-space accounting and campaign planning statistics.

A fault-injection campaign samples a tiny fraction of an enormous fault
space (locations x injection instants). This module provides the numbers
an experimenter needs around that fact:

* how big the fault space of a campaign actually is,
* how many experiments are needed for a target confidence-interval
  width (sample-size planning),
* whether two campaigns' outcome proportions differ significantly
  (e.g. protected vs unprotected controller — the E6 comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.coverage import _z_value
from repro.core.campaign import CampaignData
from repro.core.locations import LocationSpace


@dataclass(frozen=True)
class FaultSpace:
    """Size of a campaign's fault space."""

    n_locations: int
    n_instants: int

    @property
    def size(self) -> int:
        return self.n_locations * self.n_instants

    def sampled_fraction(self, n_experiments: int) -> float:
        if self.size == 0:
            return 0.0
        return n_experiments / self.size

    def describe(self, n_experiments: Optional[int] = None) -> str:
        text = (
            f"{self.n_locations} locations x {self.n_instants} instants "
            f"= {self.size:,} (location, time) pairs"
        )
        if n_experiments is not None:
            text += (
                f"; {n_experiments} experiments sample "
                f"{self.sampled_fraction(n_experiments):.2e} of it"
            )
        return text


def campaign_fault_space(
    campaign: CampaignData,
    space: LocationSpace,
    reference_duration_cycles: int,
) -> FaultSpace:
    """Fault space of one campaign: selected bits x injection instants."""
    locations = space.expand(campaign.location_patterns)
    return FaultSpace(
        n_locations=len(locations),
        n_instants=max(1, reference_duration_cycles),
    )


@dataclass(frozen=True)
class PrunedFaultSpace:
    """Fault space after pre-injection liveness pruning (Section 4).

    ``live_fraction`` is the (possibly sampled) fraction of
    (location, time) pairs the campaign's liveness oracle reports live;
    the effective space is the raw space scaled by it. The complement —
    :meth:`pruning_ratio` — is the share of experiments pre-injection
    analysis saves from injecting provably no-effect faults.
    """

    raw: FaultSpace
    live_fraction: float

    @property
    def effective_size(self) -> int:
        return round(self.raw.size * self.live_fraction)

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the raw space pruned as not live (0.0 .. 1.0)."""
        return 1.0 - self.live_fraction

    def describe(self) -> str:
        return (
            f"{self.raw.describe()}; live fraction "
            f"{self.live_fraction:.3f} -> effective space "
            f"{self.effective_size:,} pairs "
            f"({self.pruning_ratio:.1%} pruned)"
        )


def effective_fault_space(
    campaign: CampaignData,
    space: LocationSpace,
    reference_duration_cycles: int,
    oracle,
    max_samples: Optional[int] = 4096,
) -> PrunedFaultSpace:
    """Fault space of ``campaign`` after pruning with ``oracle``.

    ``oracle`` is any liveness oracle exposing
    ``live_fraction(locations, times, max_samples)`` — the dynamic,
    static, or hybrid pre-injection analysis. The fraction is estimated
    over a deterministic uniform sample capped at ``max_samples`` pairs
    (pass None to enumerate the full space).
    """
    raw = campaign_fault_space(campaign, space, reference_duration_cycles)
    locations = space.expand(campaign.location_patterns)
    times = range(1, max(1, reference_duration_cycles) + 1)
    fraction = oracle.live_fraction(
        locations, times, max_samples=max_samples
    )
    return PrunedFaultSpace(raw=raw, live_fraction=fraction)


@dataclass(frozen=True)
class CollapsedFaultSpace:
    """Fault space after pruning *and* equivalence collapsing.

    On top of the liveness-pruned effective space
    (:class:`PrunedFaultSpace`), the equivalence engine partitions the
    *sampled* experiments into provably outcome-identical classes
    (:class:`repro.staticanalysis.equivalence.EquivalencePartition`);
    only one representative per class is executed. This wrapper carries
    both accountings so reports can state "space → effective space →
    executed experiments" in one line.
    """

    pruned: PrunedFaultSpace
    n_experiments: int
    n_classes: int
    n_executed: int
    n_derived: int
    n_singletons: int

    @property
    def collapse_ratio(self) -> float:
        """Executed-experiment reduction factor (>= 1.0)."""
        if self.n_executed == 0:
            return 1.0
        return self.n_experiments / self.n_executed

    def describe(self) -> str:
        return (
            f"{self.pruned.describe()}; {self.n_experiments} sampled "
            f"experiments fall into {self.n_classes} equivalence classes "
            f"-> {self.n_executed} executed, {self.n_derived} derived "
            f"({self.collapse_ratio:.2f}x collapse, "
            f"{self.n_singletons} singleton classes)"
        )


def collapsed_fault_space(
    pruned: PrunedFaultSpace, partition_stats
) -> CollapsedFaultSpace:
    """Combine pruning and partition accounting for one campaign.

    ``partition_stats`` is a :class:`repro.staticanalysis.equivalence.
    PartitionStats` (duck-typed: anything with the same counters works).
    """
    return CollapsedFaultSpace(
        pruned=pruned,
        n_experiments=partition_stats.n_experiments,
        n_classes=partition_stats.n_classes,
        n_executed=partition_stats.n_executed,
        n_derived=partition_stats.n_derived,
        n_singletons=partition_stats.n_singletons,
    )


def required_experiments(
    expected_proportion: float,
    half_width: float,
    confidence: float = 0.95,
) -> int:
    """Experiments needed so the CI of a proportion has +-``half_width``.

    Standard normal-approximation sample sizing:
    n = z^2 * p(1-p) / w^2, rounded up. Use ``expected_proportion=0.5``
    for the worst case when nothing is known beforehand.
    """
    if not 0.0 <= expected_proportion <= 1.0:
        raise ValueError(f"proportion must be in [0,1]: {expected_proportion}")
    if not 0.0 < half_width < 1.0:
        raise ValueError(f"half width must be in (0,1): {half_width}")
    z = _z_value(confidence)
    p = expected_proportion
    return math.ceil(z * z * p * (1.0 - p) / (half_width * half_width))


@dataclass(frozen=True)
class ProportionComparison:
    """Result of a two-proportion z-test."""

    p1: float
    p2: float
    z: float
    p_value: float
    significant_05: bool

    def describe(self) -> str:
        verdict = "significant" if self.significant_05 else "not significant"
        return (
            f"p1={self.p1:.3f} vs p2={self.p2:.3f}: z={self.z:+.2f}, "
            f"p={self.p_value:.4f} ({verdict} at 0.05)"
        )


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal (via erfc)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def compare_proportions(
    successes1: int, trials1: int, successes2: int, trials2: int
) -> ProportionComparison:
    """Two-sided two-proportion z-test (pooled standard error).

    Used to decide whether, e.g., a fault-tolerance mechanism really
    lowered the failure rate or the campaigns were just lucky.
    """
    if trials1 <= 0 or trials2 <= 0:
        raise ValueError("both campaigns need at least one experiment")
    if not (0 <= successes1 <= trials1 and 0 <= successes2 <= trials2):
        raise ValueError("successes cannot exceed trials")
    p1 = successes1 / trials1
    p2 = successes2 / trials2
    pooled = (successes1 + successes2) / (trials1 + trials2)
    se = math.sqrt(pooled * (1 - pooled) * (1 / trials1 + 1 / trials2))
    if se == 0.0:
        z = 0.0
        p_value = 1.0
    else:
        z = (p1 - p2) / se
        p_value = 2.0 * _normal_sf(abs(z))
    return ProportionComparison(
        p1=p1, p2=p2, z=z, p_value=p_value, significant_05=p_value < 0.05
    )
