"""Textual campaign reports (what the analysis phase hands to the user)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.classify import CampaignClassification
from repro.analysis.coverage import detection_coverage, effectiveness_ratio


def report_to_dict(
    campaign_name: str,
    summary: CampaignClassification,
    confidence: float = 0.95,
) -> dict:
    """Machine-readable form of the campaign report (for dashboards or
    downstream tooling; the text renderers below use the same numbers)."""
    detection = detection_coverage(summary, confidence)
    effectiveness = effectiveness_ratio(summary, confidence)
    return {
        "campaign": campaign_name,
        "total": summary.total,
        "outcomes": {
            label.strip(): {"count": count, "fraction": fraction}
            for label, count, fraction in summary.as_rows()
        },
        "detections_by_mechanism": dict(summary.detections_by_mechanism),
        "detection_coverage": {
            "estimate": detection.estimate,
            "interval": list(detection.interval),
            "confidence": confidence,
        },
        "effectiveness_ratio": {
            "estimate": effectiveness.estimate,
            "interval": list(effectiveness.interval),
            "confidence": confidence,
        },
    }


def render_campaign_report(
    campaign_name: str,
    summary: CampaignClassification,
    confidence: float = 0.95,
    title: Optional[str] = None,
) -> str:
    """Render the outcome distribution as the table the paper's analysis
    phase produces (Effective/Detected-per-mechanism/Escaped,
    Non-effective/Latent/Overwritten) plus coverage estimates."""
    lines = [
        title or f"Campaign analysis: {campaign_name}",
        "=" * 60,
        f"{'outcome':40s} {'count':>6s} {'frac':>8s}",
        "-" * 60,
    ]
    for label, count, fraction in summary.as_rows():
        lines.append(f"{label:40s} {count:6d} {fraction:7.1%}")
    lines.append("-" * 60)
    lines.append(
        f"detection coverage (of effective): {detection_coverage(summary, confidence)}"
    )
    lines.append(
        f"effectiveness ratio (of injected): {effectiveness_ratio(summary, confidence)}"
    )
    return "\n".join(lines)


def render_comparison(
    labels: Sequence[str],
    summaries: Sequence[CampaignClassification],
) -> str:
    """Side-by-side outcome distributions (used by the E4/E6/E7 benches)."""
    if len(labels) != len(summaries):
        raise ValueError("labels and summaries must align")
    header = f"{'outcome':32s}" + "".join(f"{label:>18s}" for label in labels)
    lines = [header, "-" * len(header)]
    all_rows = [summary.as_rows() for summary in summaries]
    # Canonical row order: the fixed taxonomy skeleton with the union of
    # all detection mechanisms slotted directly under "  detected".
    mechanisms = sorted(
        {
            mechanism
            for summary in summaries
            for mechanism in summary.detections_by_mechanism
        }
    )
    row_labels = (
        ["effective", "  detected"]
        + [f"    by {mechanism}" for mechanism in mechanisms]
        + [
            "  escaped (wrong results)",
            "  escaped (timeliness)",
            "non-effective",
            "  latent",
            "  overwritten",
        ]
    )
    for i, row_label in enumerate(row_labels):
        cells = ""
        for rows in all_rows:
            # Row sets can differ (different mechanisms detected); align
            # by label where possible.
            match = next((r for r in rows if r[0] == row_label), None)
            if match is None:
                cells += f"{'-':>18s}"
            else:
                cells += f"{match[1]:>8d} {match[2]:>8.1%} "
        lines.append(f"{row_label:32s}{cells}")
    return "\n".join(lines)
