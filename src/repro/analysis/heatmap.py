"""Location × time heatmaps of campaign outcomes and error propagation.

Two streaming accumulators behind the analytics engine:

* :class:`OutcomeHeatmap` — one cell per (fault-location cell, injection
  -time bin), counting experiments, effective errors and detections.
  Answers "*where and when* do injected faults bite?" for normal-mode
  campaigns (the fault-space view the paper's analysis phase leaves to
  tailor-made scripts).
* :class:`PropagationHeatmap` — built from E8-style detail rows
  (per-instruction state logs): one cell per (architectural state cell,
  execution-time bin), counting how often that cell was *infected*
  (differed from the reference) in that window. This is the
  location×time error-propagation picture of
  :mod:`repro.analysis.propagation`, aggregated over many traces.

Both are O(rows × bins) in memory regardless of campaign size, render
to compact ASCII grids, and serialise deterministically (rows ordered
by activity, then name) so CLI and service reports compare equal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.classify import diff_state_vectors

__all__ = ["OutcomeHeatmap", "PropagationHeatmap"]

#: Density ramp for ASCII rendering (index by fraction of the max).
_RAMP = " .:-=+*#%@"


def _bin_index(value: int, max_value: int, n_bins: int) -> int:
    """Clamp ``value`` in [0, max_value] into one of ``n_bins`` bins."""
    if value <= 0:
        return 0
    if value >= max_value:
        return n_bins - 1
    return min(n_bins - 1, value * n_bins // (max_value + 1))


def _cell_of(location_key: str) -> str:
    """Fold a bit-level location key to its state cell (drop ``[bit]``)."""
    head, _, _ = location_key.rpartition("[")
    return head or location_key


def _render_grid(
    title: str,
    rows: List[Tuple[str, List[int]]],
    n_bins: int,
    legend: str,
) -> str:
    peak = max((max(counts) for _, counts in rows), default=0)
    lines = [title]
    if not rows or peak == 0:
        lines.append("  (no data)")
        return "\n".join(lines)
    width = max(len(label) for label, _ in rows)
    for label, counts in rows:
        cells = "".join(
            _RAMP[min(len(_RAMP) - 1, count * (len(_RAMP) - 1) // peak)]
            for count in counts
        )
        lines.append(f"  {label:{width}s} |{cells}|")
    lines.append(f"  {'':{width}s} +{'-' * n_bins}+  {legend} (peak {peak})")
    return "\n".join(lines)


class OutcomeHeatmap:
    """Streaming (location cell × injection-time bin) outcome counts."""

    def __init__(
        self, max_time: int, time_bins: int = 12, max_rows: int = 16
    ) -> None:
        self.max_time = max(1, int(max_time))
        self.time_bins = max(1, int(time_bins))
        self.max_rows = max(1, int(max_rows))
        #: row label -> (counts, effective, detected) per time bin
        self._rows: Dict[str, Tuple[List[int], List[int], List[int]]] = {}

    def add(
        self,
        location_key: str,
        time: int,
        effective: bool,
        detected: bool,
    ) -> None:
        label = _cell_of(location_key)
        row = self._rows.get(label)
        if row is None:
            row = (
                [0] * self.time_bins,
                [0] * self.time_bins,
                [0] * self.time_bins,
            )
            self._rows[label] = row
        column = _bin_index(time, self.max_time, self.time_bins)
        row[0][column] += 1
        if effective:
            row[1][column] += 1
        if detected:
            row[2][column] += 1

    def _ordered(self) -> List[Tuple[str, Tuple[List[int], List[int], List[int]]]]:
        return sorted(
            self._rows.items(), key=lambda item: (-sum(item[1][0]), item[0])
        )[: self.max_rows]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "outcome",
            "time_bins": self.time_bins,
            "max_time": self.max_time,
            "n_locations": len(self._rows),
            "rows": {
                label: {
                    "counts": list(counts),
                    "effective": list(effective),
                    "detected": list(detected),
                }
                for label, (counts, effective, detected) in self._ordered()
            },
        }

    def render(self) -> str:
        rows = [(label, row[1]) for label, row in self._ordered()]
        title = (
            f"effective errors by location x injection time "
            f"({self.time_bins} bins over {self.max_time} cycles, "
            f"top {len(rows)} of {len(self._rows)} locations)"
        )
        return _render_grid(title, rows, self.time_bins, "effective count")


class PropagationHeatmap:
    """Aggregated infection counts per (state cell × execution-time bin).

    Each detail-mode trace contributes one sample per compared step:
    every cell that differs from the reference at that step increments
    its (cell, bin) bucket, with the step position normalised to the
    trace's own compared length so traces of different lengths align.
    """

    def __init__(self, time_bins: int = 12, max_rows: int = 16) -> None:
        self.time_bins = max(1, int(time_bins))
        self.max_rows = max(1, int(max_rows))
        self.n_traces = 0
        self._rows: Dict[str, List[int]] = {}

    def add_trace(
        self,
        reference_states: Sequence[Dict[str, int]],
        experiment_states: Sequence[Dict[str, int]],
    ) -> None:
        steps = min(len(reference_states), len(experiment_states))
        if steps == 0:
            return
        self.n_traces += 1
        for step in range(steps):
            diffs = diff_state_vectors(
                reference_states[step], experiment_states[step]
            )
            if not diffs:
                continue
            column = _bin_index(step, steps - 1, self.time_bins)
            for cell in diffs:
                row = self._rows.get(cell)
                if row is None:
                    row = [0] * self.time_bins
                    self._rows[cell] = row
                row[column] += 1

    def _ordered(self) -> List[Tuple[str, List[int]]]:
        return sorted(
            self._rows.items(), key=lambda item: (-sum(item[1]), item[0])
        )[: self.max_rows]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "propagation",
            "time_bins": self.time_bins,
            "n_traces": self.n_traces,
            "n_cells": len(self._rows),
            "rows": {
                label: list(counts) for label, counts in self._ordered()
            },
        }

    def render(self) -> str:
        rows = self._ordered()
        title = (
            f"error propagation: infected state cells x execution time "
            f"({self.n_traces} detail traces, top {len(rows)} of "
            f"{len(self._rows)} cells)"
        )
        return _render_grid(title, rows, self.time_bins, "infection count")
