"""Cross-campaign diffing and the ``goofi analyze --gate`` regression gate.

Two campaign reports are compared through their RunMeta-style config
hash (:func:`repro.observability.runmeta.campaign_config_hash`):

* **Same hash** — the runs claim identical configurations, so any drift
  in the outcome mix is evidence, not design. Each outcome class gets a
  two-proportion z-test, and the gate metrics (detection coverage,
  escaped fraction) use the same tolerance-band vocabulary as
  ``benchmarks/check_regression.py``: a metric regresses only when it
  leaves the relative tolerance band *and* the drift is statistically
  significant at 0.05 — noise inside the band never trips the gate.
* **Different hash** — the configurations differ, so outcome drift is
  expected; the diff instead reports the field-level config delta next
  to the outcome delta and never flags a regression.

``--gate`` exits nonzero iff :attr:`CampaignDiff.regressed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.classify import Outcome
from repro.analysis.engine import CampaignReport
from repro.analysis.faultspace import ProportionComparison, compare_proportions

__all__ = ["CampaignDiff", "MetricDelta", "diff_reports"]


@dataclass(frozen=True)
class MetricDelta:
    """One gated metric compared across two runs."""

    name: str
    direction: str  # "higher_better" | "lower_better"
    base: float
    fresh: float
    comparison: Optional[ProportionComparison]
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "direction": self.direction,
            "base": self.base,
            "fresh": self.fresh,
            "regressed": self.regressed,
        }
        if self.comparison is not None:
            out["z"] = self.comparison.z
            out["p_value"] = self.comparison.p_value
            out["significant_05"] = self.comparison.significant_05
        return out


@dataclass
class CampaignDiff:
    """Outcome (and, when configs differ, config) delta of two runs."""

    base_campaign: str
    fresh_campaign: str
    base_hash: str
    fresh_hash: str
    same_config: bool
    tolerance: float
    #: outcome label -> {base/fresh count+fraction, z-test}
    outcome_delta: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: total variation distance between the two outcome distributions
    tv_distance: float = 0.0
    metrics: List[MetricDelta] = field(default_factory=list)
    #: dotted config field -> {"base": ..., "fresh": ...}; empty when
    #: the hashes match.
    config_delta: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    regressed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_campaign": self.base_campaign,
            "fresh_campaign": self.fresh_campaign,
            "base_config_hash": self.base_hash,
            "fresh_config_hash": self.fresh_hash,
            "same_config": self.same_config,
            "tolerance": self.tolerance,
            "outcome_delta": self.outcome_delta,
            "tv_distance": self.tv_distance,
            "metrics": [metric.to_dict() for metric in self.metrics],
            "config_delta": self.config_delta,
            "regressed": self.regressed,
        }

    def render(self) -> str:
        lines = [
            f"Campaign diff: {self.base_campaign} (base) vs "
            f"{self.fresh_campaign} (fresh)",
            "=" * 60,
            f"config hashes: {self.base_hash[:12]}… vs "
            f"{self.fresh_hash[:12]}… "
            f"({'identical' if self.same_config else 'DIFFERENT'})",
        ]
        if self.config_delta:
            lines.append("config delta:")
            for key in sorted(self.config_delta):
                entry = self.config_delta[key]
                lines.append(
                    f"  {key}: {entry['base']!r} -> {entry['fresh']!r}"
                )
        lines.append(
            f"{'outcome':26s} {'base':>12s} {'fresh':>12s} {'drift':>16s}"
        )
        lines.append("-" * 70)
        for label, row in self.outcome_delta.items():
            drift = (
                f"z={row['z']:+.2f} p={row['p_value']:.3f}"
                if "z" in row
                else "-"
            )
            lines.append(
                f"{label:26s} {row['base_count']:5d} {row['base_fraction']:6.1%}"
                f" {row['fresh_count']:5d} {row['fresh_fraction']:6.1%}"
                f" {drift:>16s}"
            )
        lines.append(
            f"total variation distance: {self.tv_distance:.4f} "
            f"(tolerance band ±{self.tolerance:.0%})"
        )
        for metric in self.metrics:
            arrow = "REGRESSED" if metric.regressed else "ok"
            lines.append(
                f"{metric.name} ({metric.direction}): "
                f"{metric.base:.3f} -> {metric.fresh:.3f} [{arrow}]"
            )
        if self.same_config:
            lines.append(
                "verdict: REGRESSION" if self.regressed else "verdict: PASS"
            )
        else:
            lines.append(
                "verdict: configs differ — outcome drift reported, not gated"
            )
        return "\n".join(lines)


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in value:
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    elif isinstance(value, list):
        # Lists (fault locations, output spec) are compared wholesale —
        # elementwise diffs of reordered location lists read as noise.
        out[prefix] = value
    else:
        out[prefix] = value


def _config_delta(
    base_config: Optional[Dict[str, Any]],
    fresh_config: Optional[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    base_flat: Dict[str, Any] = {}
    fresh_flat: Dict[str, Any] = {}
    _flatten("", base_config or {}, base_flat)
    _flatten("", fresh_config or {}, fresh_flat)
    delta: Dict[str, Dict[str, Any]] = {}
    for key in sorted(set(base_flat) | set(fresh_flat)):
        base_value = base_flat.get(key)
        fresh_value = fresh_flat.get(key)
        if base_value != fresh_value:
            delta[key] = {"base": base_value, "fresh": fresh_value}
    return delta


def _gate_metric(
    name: str,
    direction: str,
    base_successes: int,
    base_trials: int,
    fresh_successes: int,
    fresh_trials: int,
    tolerance: float,
) -> MetricDelta:
    base = base_successes / base_trials if base_trials else 0.0
    fresh = fresh_successes / fresh_trials if fresh_trials else 0.0
    comparison = None
    if base_trials > 0 and fresh_trials > 0:
        comparison = compare_proportions(
            base_successes, base_trials, fresh_successes, fresh_trials
        )
    if direction == "higher_better":
        outside_band = fresh < base * (1.0 - tolerance)
    else:
        outside_band = fresh > base * (1.0 + tolerance) and fresh > base
    regressed = bool(
        outside_band and comparison is not None and comparison.significant_05
    )
    return MetricDelta(
        name=name,
        direction=direction,
        base=base,
        fresh=fresh,
        comparison=comparison,
        regressed=regressed,
    )


def diff_reports(
    base: CampaignReport,
    fresh: CampaignReport,
    base_config: Optional[Dict[str, Any]] = None,
    fresh_config: Optional[Dict[str, Any]] = None,
    tolerance: float = 0.1,
) -> CampaignDiff:
    """Compare two campaign reports keyed by their config hashes.

    ``tolerance`` is the relative band a gated metric may move within
    before it can count as a regression (mirroring the benchmark gate's
    ``GOOFI_BENCH_TOLERANCE`` semantics).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1): {tolerance}")
    same = base.config_hash == fresh.config_hash

    outcome_delta: Dict[str, Dict[str, Any]] = {}
    tv = 0.0
    for outcome in Outcome:
        base_count = base.summary.count(outcome)
        fresh_count = fresh.summary.count(outcome)
        row: Dict[str, Any] = {
            "base_count": base_count,
            "base_fraction": base.summary.fraction(outcome),
            "fresh_count": fresh_count,
            "fresh_fraction": fresh.summary.fraction(outcome),
        }
        tv += abs(row["base_fraction"] - row["fresh_fraction"])
        if base.total > 0 and fresh.total > 0:
            comparison = compare_proportions(
                base_count, base.total, fresh_count, fresh.total
            )
            row["z"] = comparison.z
            row["p_value"] = comparison.p_value
            row["significant_05"] = comparison.significant_05
        outcome_delta[outcome.value] = row

    metrics = [
        _gate_metric(
            "detection_coverage",
            "higher_better",
            base.summary.detected,
            base.summary.effective,
            fresh.summary.detected,
            fresh.summary.effective,
            tolerance,
        ),
        _gate_metric(
            "escaped_fraction",
            "lower_better",
            base.summary.escaped,
            base.total,
            fresh.summary.escaped,
            fresh.total,
            tolerance,
        ),
    ]

    return CampaignDiff(
        base_campaign=base.campaign_name,
        fresh_campaign=fresh.campaign_name,
        base_hash=base.config_hash,
        fresh_hash=fresh.config_hash,
        same_config=same,
        tolerance=tolerance,
        outcome_delta=outcome_delta,
        tv_distance=0.5 * tv,
        metrics=metrics,
        config_delta={} if same else _config_delta(base_config, fresh_config),
        regressed=same and any(metric.regressed for metric in metrics),
    )
