"""Exact (Clopper-Pearson) binomial confidence intervals.

The Wilson score interval (:func:`repro.analysis.coverage.
wilson_interval`) is the workhorse for campaign coverage figures, but it
is an approximation: its actual coverage probability dips below the
nominal confidence for some ``(n, p)`` combinations. The
Clopper-Pearson interval inverts the exact binomial test instead — its
coverage is *guaranteed* to be at least nominal, at the price of being
wider. The analytics engine reports both, so an experimenter can quote
the conservative figure when a certification argument rides on it.

Everything here is pure stdlib: the regularized incomplete beta
function is evaluated with the standard Lentz continued fraction and
inverted by bisection.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["clopper_pearson_interval", "regularized_incomplete_beta"]

#: Continued-fraction convergence threshold / iteration cap.
_CF_EPS = 3e-12
_CF_MAX_ITER = 300
#: Guard against division by ~zero inside the continued fraction.
_CF_TINY = 1e-300


def _beta_cf(a: float, b: float, x: float) -> float:
    """Lentz's continued fraction for the incomplete beta function."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _CF_TINY:
        d = _CF_TINY
    d = 1.0 / d
    h = d
    for m in range(1, _CF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_TINY:
            d = _CF_TINY
        c = 1.0 + aa / c
        if abs(c) < _CF_TINY:
            c = _CF_TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_TINY:
            d = _CF_TINY
        c = 1.0 + aa / c
        if abs(c) < _CF_TINY:
            c = _CF_TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPS:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` — the CDF of the Beta(a, b) distribution at ``x``."""
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"beta parameters must be positive: a={a}, b={b}")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast only on one side of the
    # mean; use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_ppf(q: float, a: float, b: float) -> float:
    """Quantile of Beta(a, b) by bisection (monotone CDF, so this is
    robust everywhere, including the extreme tails campaigns live in)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-14:
            break
    return 0.5 * (lo + hi)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact two-sided Clopper-Pearson interval for a binomial proportion.

    Same contract as :func:`repro.analysis.coverage.wilson_interval`:
    ``trials == 0`` yields the vacuous ``(0, 1)``, and the boundary
    cases ``successes == 0`` / ``successes == trials`` pin the matching
    endpoint to exactly 0 / 1.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid binomial sample: {successes}/{trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if trials == 0:
        return (0.0, 1.0)
    alpha = 1.0 - confidence
    if successes == 0:
        lo = 0.0
    else:
        lo = _beta_ppf(alpha / 2.0, successes, trials - successes + 1)
    if successes == trials:
        hi = 1.0
    else:
        hi = _beta_ppf(1.0 - alpha / 2.0, successes + 1, trials - successes)
    return (lo, hi)
