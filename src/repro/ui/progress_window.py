"""Campaign progress window (paper Figure 7).

"a progress window is shown enabling the user to monitor the experiments,
e.g. getting information about the number of faults injected and also to
pause, restart or end the campaign."
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.controller import CampaignController, CampaignProgress
from repro.observability import get_observability
from repro.observability.health import get_health
from repro.observability.report import progress_metrics_line


def _format_eta(seconds: float) -> str:
    """Compact ``1h02m`` / ``3m20s`` / ``12s`` rendering."""
    total = int(round(seconds))
    if total >= 3600:
        return f"{total // 3600}h{(total % 3600) // 60:02d}m"
    if total >= 60:
        return f"{total // 60}m{total % 60:02d}s"
    return f"{total}s"


class ProgressWindow:
    """Live view over a :class:`CampaignController`.

    When the process-global observability has metrics enabled, the
    rendered window gains a live ``metrics:`` digest line (experiment
    throughput, scan/DB latency, pre-injection prune ratio) fed from the
    :class:`~repro.observability.metrics.MetricsRegistry` snapshot."""

    BAR_WIDTH = 40

    def __init__(self, controller: CampaignController, stream=None):
        self.controller = controller
        self.stream = stream
        self.snapshots: List[CampaignProgress] = []
        controller.add_listener(self._on_progress)

    # -- the three buttons -----------------------------------------------------

    def pause(self) -> None:
        self.controller.pause()

    def restart(self) -> None:
        self.controller.resume()

    def end(self) -> None:
        self.controller.stop()

    # -- updates ------------------------------------------------------------------

    def _on_progress(self, progress: CampaignProgress) -> None:
        self.snapshots.append(_copy_progress(progress))
        if self.stream is not None:
            print(self.render(), file=self.stream)

    @property
    def latest(self) -> Optional[CampaignProgress]:
        return self.snapshots[-1] if self.snapshots else None

    def render(self) -> str:
        progress = self.latest or self.controller.progress
        done = progress.n_done
        total = max(1, progress.n_total)
        filled = int(self.BAR_WIDTH * min(1.0, done / total))
        bar = "#" * filled + "." * (self.BAR_WIDTH - filled)
        lines = [
            f"Campaign: {progress.campaign_name}   [{progress.state}]",
            f"[{bar}] {progress.percent_done:5.1f}%",
            f"experiments: {done}/{progress.n_total}   "
            f"faults injected: {progress.n_injected_faults}   "
            f"rate: {progress.experiments_per_second:.1f}/s",
        ]
        if progress.eta_seconds is not None and progress.state == "running":
            lines[-1] += f"   eta: {_format_eta(progress.eta_seconds)}"
        if progress.n_workers > 1 or progress.n_worker_failures:
            workers = f"workers: {progress.n_workers}"
            if progress.n_worker_failures:
                workers += f"   worker failures: {progress.n_worker_failures}"
            lines.append(workers)
        if progress.terminations:
            terms = "  ".join(
                f"{kind}={count}"
                for kind, count in sorted(progress.terminations.items())
            )
            lines.append(f"terminations: {terms}")
        if progress.detections:
            dets = "  ".join(
                f"{name}={count}"
                for name, count in sorted(progress.detections.items())
            )
            lines.append(f"detections:   {dets}")
        metrics = get_observability().metrics
        if metrics.enabled:
            digest = progress_metrics_line(metrics.snapshot())
            if digest:
                lines.append(digest)
        health = get_health()
        if health.enabled and health.alerts:
            # Edge-triggered health findings (stall / outcome-mix drift)
            # from the campaign's live monitor — newest last.
            for alert in health.alerts[-3:]:
                lines.append(f"health [{alert.kind}]: {alert.message}")
        return "\n".join(lines)


def _copy_progress(progress: CampaignProgress) -> CampaignProgress:
    return CampaignProgress(
        campaign_name=progress.campaign_name,
        n_total=progress.n_total,
        n_done=progress.n_done,
        n_injected_faults=progress.n_injected_faults,
        terminations=dict(progress.terminations),
        detections=dict(progress.detections),
        elapsed_seconds=progress.elapsed_seconds,
        state=progress.state,
        n_workers=progress.n_workers,
        n_worker_failures=progress.n_worker_failures,
        eta_seconds=progress.eta_seconds,
    )
