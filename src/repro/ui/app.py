"""The ``goofi`` command-line application.

Drives the four phases of a fault-injection study from the shell:

    goofi targets                               # what can I inject into?
    goofi workloads                             # what can I run?
    goofi configure  --db g.db --target thor-rd # configuration phase (Fig. 5)
    goofi tree       --target thor-rd           # location hierarchy (Fig. 6)
    goofi campaign   --db g.db --name c1 ...    # set-up phase (Fig. 6)
    goofi merge      --db g.db --into c3 c1 c2  # merge stored campaigns
    goofi lint       --db g.db --campaign c1    # set-up validation, CI gate
    goofi run        --db g.db --campaign c1    # fault-injection phase (Fig. 7)
    goofi analyze    --db g.db --campaign c1    # analysis phase
    goofi rerun      --db g.db --campaign c1 --index 4   # detail re-run
    goofi propagate  --db g.db --experiment c1-exp00004-rerun
    goofi preview    --db g.db --campaign c1    # fault list without running
    goofi compare    --db g.db c1 c2            # significance testing
    goofi plan --half-width 0.05                # sample-size planning
    goofi faultspace --db g.db --campaign c1    # fault-space accounting
    goofi gen-analysis --db g.db --campaign c1  # emit analysis script
    goofi port-skeleton --name MyBoard --techniques scifi

The campaign fabric (fault injection as a service):

    goofi serve   --db g.db --port 0 --workers 4   # REST job API
    goofi submit  --url http://HOST:PORT --spec c.json --wait
    goofi status  --url http://HOST:PORT [--job job-000001]
    goofi results --url http://HOST:PORT --job job-000001
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.campaign import EnvironmentSpec, FaultModelSpec
from repro.core.controller import CampaignController
from repro.core.framework import (
    available_targets,
    available_techniques,
    create_target,
    generate_port_skeleton,
)
from repro.core.triggers import TriggerSpec
from repro.db import GoofiDatabase
from repro.db.autoanalysis import generate_analysis_script
from repro.ui.campaign_window import CampaignSetupWindow
from repro.ui.config_window import TargetConfigurationWindow
from repro.ui.progress_window import ProgressWindow
from repro.util.errors import ReproError
from repro.workloads import available_workloads


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="goofi",
        description="GOOFI: generic object-oriented fault injection tool",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list registered target systems")
    p = sub.add_parser("workloads", help="list available workloads")
    p.add_argument("--target", help="restrict to one target's workloads")
    sub.add_parser("techniques", help="list fault-injection techniques")

    p = sub.add_parser("configure", help="save target data (Figure 5)")
    p.add_argument("--db", required=True)
    p.add_argument("--target", default="thor-rd")
    p.add_argument("--max-rows", type=int, default=24)

    p = sub.add_parser("tree", help="show the fault-location hierarchy")
    p.add_argument("--target", default="thor-rd")
    p.add_argument("--workload", default="bubblesort")

    p = sub.add_parser("campaign", help="define a campaign (Figure 6)")
    p.add_argument("--db", required=True)
    p.add_argument("--name", required=True)
    p.add_argument("--target", default="thor-rd")
    p.add_argument("--technique", default="scifi")
    p.add_argument("--workload", default="bubblesort")
    p.add_argument(
        "--locations", nargs="+", default=["scan:internal/cpu.regfile.*"]
    )
    p.add_argument("--experiments", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fault-kind", default="transient",
                   choices=["transient", "intermittent", "permanent"])
    p.add_argument("--multiplicity", type=int, default=1)
    p.add_argument("--trigger", default="time-uniform",
                   choices=list(TriggerSpec.VALID_KINDS))
    p.add_argument("--logging-mode", default="normal",
                   choices=["normal", "detail"])
    p.add_argument("--timeout-cycles", type=int)
    p.add_argument("--max-iterations", type=int)
    p.add_argument("--environment")
    p.add_argument("--preinjection", action="store_true")
    p.add_argument("--protect-code", action="store_true",
                   help="write-protect the code image (software EDM)")

    p = sub.add_parser("merge", help="merge stored campaigns")
    p.add_argument("--db", required=True)
    p.add_argument("--into", required=True)
    p.add_argument("sources", nargs="+")

    p = sub.add_parser("campaigns", help="list stored campaigns")
    p.add_argument("--db", required=True)

    p = sub.add_parser(
        "lint",
        help="lint campaign configurations (exits 1 on error findings, "
             "so it can gate CI)",
    )
    p.add_argument("--db", help="database holding the stored campaign")
    p.add_argument("--campaign", help="stored campaign name to lint")
    p.add_argument(
        "--spec", nargs="+", metavar="FILE",
        help="CampaignData JSON spec file(s) to lint instead of a stored "
             "campaign",
    )
    p.add_argument(
        "--partition", action="store_true",
        help="for equivalence-mode campaigns, perform the reference run "
             "and partition the planned fault list so class statistics "
             "(class-singleton-heavy) are linted too",
    )

    p = sub.add_parser("run", help="run a campaign (Figure 7)")
    p.add_argument("--db", required=True)
    p.add_argument("--campaign", required=True)
    p.add_argument("--quiet", action="store_true")
    p.add_argument("--resume", action="store_true",
                   help="skip experiments already logged in the database")
    p.add_argument("--trace",
                   help="write a structured JSONL trace of the run to PATH "
                        "(inspect with 'goofi-metrics trace PATH')")
    p.add_argument("--metrics-out",
                   help="write a metrics snapshot (JSON) to PATH after the "
                        "run (inspect with 'goofi-metrics report PATH')")
    p.add_argument("--serve-metrics", type=int, metavar="PORT",
                   help="serve live telemetry over HTTP while the campaign "
                        "runs (/metrics OpenMetrics, /healthz, /snapshot); "
                        "PORT 0 binds an ephemeral port (printed at start)")
    p.add_argument("--flight-records", type=int, metavar="N", default=0,
                   help="keep a crash flight recorder of the last N trace "
                        "events; dumped to flight-<pid>.jsonl on crashes, "
                        "watchdog kills and worker failures")
    p.add_argument("--golden-cache", metavar="DIR",
                   default=os.environ.get("GOOFI_GOLDEN_CACHE") or None,
                   help="cache golden (reference) runs in DIR keyed by the "
                        "campaign's config hash, so re-running an unchanged "
                        "campaign skips the reference execution "
                        "(GOOFI_GOLDEN_CACHE)")
    p.add_argument("--verify-equivalence", type=float, metavar="P",
                   default=0.0,
                   help="equivalence mode: re-execute fraction P of "
                        "statically-derived experiments for real and "
                        "hard-fail the campaign if any outcome diverges "
                        "from its derivation")
    p.add_argument("--no-early-exit", action="store_true",
                   help="disable divergence-window early exits and "
                        "outcome memoization: simulate every faulty run "
                        "to workload end (the escape hatch for "
                        "debugging or timing studies)")

    p = sub.add_parser(
        "analyze",
        help="streaming campaign analytics: outcome mix with Wilson and "
             "exact intervals, heatmaps, sequential stopping advice, "
             "cross-campaign diffing (safe to run against a live "
             "campaign — the database is opened read-only)",
    )
    p.add_argument("--db", required=True)
    p.add_argument("--campaign", required=True,
                   help="campaign to analyze (the run under test when "
                        "diffing)")
    p.add_argument("--confidence", type=float, default=0.95)
    p.add_argument("--half-width", type=float, default=0.05,
                   help="sequential-stopping target CI half-width ε: "
                        "advice says stop once the detection-coverage "
                        "interval half-width is ≤ ε")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (identical to "
                        "the fabric's /jobs/<id>/analysis payload)")
    p.add_argument("--batch-size", type=int, default=512,
                   help="rows fetched per cursor batch")
    p.add_argument("--time-bins", type=int, default=12,
                   help="time-axis resolution of the heatmaps")
    p.add_argument("--diff", metavar="BASELINE",
                   help="diff against this baseline campaign: same config "
                        "hash → outcome-mix drift with significance tests; "
                        "different hash → field-level config delta")
    p.add_argument("--diff-db", metavar="PATH",
                   help="database holding the baseline campaign "
                        "(default: --db)")
    p.add_argument("--gate", action="store_true",
                   help="with --diff: exit 1 when the run under test "
                        "regressed vs. the baseline (tolerance band + "
                        "significance, like benchmarks/check_regression.py)")
    p.add_argument("--tolerance", type=float, default=0.1,
                   help="relative tolerance band for --gate metrics")

    p = sub.add_parser("rerun", help="re-run one experiment in detail mode")
    p.add_argument("--db", required=True)
    p.add_argument("--campaign", required=True)
    p.add_argument("--index", type=int, required=True)

    p = sub.add_parser("gen-analysis", help="generate an analysis script")
    p.add_argument("--db", required=True)
    p.add_argument("--campaign", required=True)
    p.add_argument("--output", default="-")

    p = sub.add_parser("port-skeleton", help="emit a new-target skeleton")
    p.add_argument("--name", required=True)
    p.add_argument("--techniques", nargs="+", default=["scifi"])

    p = sub.add_parser(
        "compare", help="compare two stored campaigns statistically"
    )
    p.add_argument("--db", required=True)
    p.add_argument("campaigns", nargs=2)

    p = sub.add_parser(
        "plan", help="sample-size planning for a target CI width"
    )
    p.add_argument("--proportion", type=float, default=0.5)
    p.add_argument("--half-width", type=float, default=0.05)
    p.add_argument("--confidence", type=float, default=0.95)

    p = sub.add_parser(
        "propagate", help="error-propagation report for a detail-mode experiment"
    )
    p.add_argument("--db", required=True)
    p.add_argument("--experiment", required=True)

    p = sub.add_parser(
        "faultspace", help="fault-space accounting for a stored campaign"
    )
    p.add_argument("--db", required=True)
    p.add_argument("--campaign", required=True)

    p = sub.add_parser(
        "preview", help="preview a campaign's planned faults without running"
    )
    p.add_argument("--db", required=True)
    p.add_argument("--campaign", required=True)
    p.add_argument("--count", type=int, default=10)

    p = sub.add_parser(
        "serve",
        help="run the campaign fabric: a REST job API scheduling "
             "campaigns across a worker fleet",
    )
    p.add_argument("--db", required=True,
                   help="shared sqlite sink every job logs into "
                        "(must be a file path)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 binds an ephemeral port (announced on stdout)")
    p.add_argument("--workers", type=int, default=None,
                   help="total worker processes across concurrent jobs "
                        "(default: max(2, cpu count))")
    p.add_argument("--tenant-quota", type=int, default=8,
                   help="max non-terminal jobs per tenant (0 = unlimited)")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="max queued jobs across tenants (0 = unlimited)")
    p.add_argument("--golden-cache", metavar="DIR",
                   default=os.environ.get("GOOFI_GOLDEN_CACHE") or None,
                   help="golden-run disk cache shared by every job, so "
                        "reference runs dedupe across identical configs "
                        "(GOOFI_GOLDEN_CACHE)")
    p.add_argument("--shard-size", type=int, default=8)
    p.add_argument("--start-method", default=None,
                   choices=["fork", "spawn", "forkserver"])

    p = sub.add_parser(
        "submit", help="submit a campaign spec to a fabric server"
    )
    p.add_argument("--url", required=True,
                   help="fabric base URL (as announced by 'goofi serve')")
    p.add_argument("--spec", required=True,
                   help="CampaignData JSON spec file (the same document "
                        "'goofi lint --spec' validates)")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0,
                   help="larger runs earlier; FIFO within a priority")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes requested from the fleet")
    p.add_argument("--no-golden-cache", action="store_true",
                   help="skip the server's golden-run cache for this job")
    p.add_argument("--wait", action="store_true",
                   help="poll the job to a terminal state before exiting "
                        "(exit 1 when it failed)")
    p.add_argument("--timeout", type=float, default=None,
                   help="give up waiting after this many seconds")

    p = sub.add_parser(
        "status", help="fabric service/job status"
    )
    p.add_argument("--url", required=True)
    p.add_argument("--job",
                   help="job id; omitted, prints service info and the "
                        "job list")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON body instead of a summary")

    p = sub.add_parser(
        "results",
        help="canonical result rows of a finished fabric job "
             "(byte-identical to a local serial run of the same spec)",
    )
    p.add_argument("--url", required=True)
    p.add_argument("--job", required=True)
    p.add_argument("--output", default="-",
                   help="write the JSON payload to PATH (default stdout)")

    return parser


def _cmd_configure(args) -> int:
    with GoofiDatabase(args.db) as db:
        target = create_target(args.target)
        window = TargetConfigurationWindow(target, db)
        window.save()
        print(window.render(max_rows=args.max_rows))
        print(f"saved TargetSystemData for {args.target!r} to {args.db}")
    return 0


def _cmd_tree(args) -> int:
    window = CampaignSetupWindow()
    window.select_target(args.target)
    window.set_workload(args.workload)
    print(window.location_tree())
    return 0


def _cmd_campaign(args) -> int:
    with GoofiDatabase(args.db) as db:
        window = CampaignSetupWindow(db)
        window.select_target(args.target)
        window.set_name(args.name)
        window.set_technique(args.technique)
        window.set_workload(args.workload)
        window.choose_locations(args.locations)
        window.set_fault_model(
            FaultModelSpec(kind=args.fault_kind, multiplicity=args.multiplicity)
        )
        window.set_trigger(TriggerSpec(kind=args.trigger))
        window.set_experiments(args.experiments, args.seed)
        window.set_logging_mode(args.logging_mode)
        window.set_termination(args.timeout_cycles, args.max_iterations)
        if args.environment:
            window.set_environment(args.environment)
        if args.preinjection:
            window.set_preinjection(True)
        if args.protect_code:
            window.set_protect_code(True)
        window.save()
        print(window.render())
        print(f"saved CampaignData {args.name!r} to {args.db}")
    return 0


def _cmd_run(args) -> int:
    from repro.observability import (
        configure,
        disable,
        get_observability,
        start_exporter,
    )

    serve_port = getattr(args, "serve_metrics", None)
    flight_records = getattr(args, "flight_records", 0) or 0
    want_obs = bool(
        args.trace
        or args.metrics_out
        or serve_port is not None
        or flight_records > 0
    )
    if want_obs:
        configure(
            trace_path=args.trace,
            metrics=bool(args.metrics_out) or serve_port is not None,
            flight_records=flight_records,
        )
    exporter = None
    try:
        if serve_port is not None:
            exporter = start_exporter(port=serve_port)
            print(
                "serving live telemetry on "
                f"{exporter.url('/metrics')} (/healthz, /snapshot)"
            )
        with GoofiDatabase(args.db) as db:
            campaign = db.load_campaign(args.campaign)
            target = create_target(campaign.target_name)
            golden_dir = getattr(args, "golden_cache", None)
            if golden_dir:
                from repro.core.goldencache import GoldenRunCache

                target.golden_cache = GoldenRunCache(golden_dir)
            verify = getattr(args, "verify_equivalence", 0.0) or 0.0
            if not 0.0 <= verify <= 1.0:
                print(
                    "goofi: error: --verify-equivalence must be in [0, 1]",
                    file=sys.stderr,
                )
                return 1
            target.verify_equivalence = verify
            if getattr(args, "no_early_exit", False):
                target.early_exit = False
                target.memoize = False
            controller = CampaignController(target, sink=db)
            window = ProgressWindow(
                controller, stream=None if args.quiet else sys.stdout
            )
            controller.run(campaign, resume=args.resume)
            print(window.render())
        if want_obs:
            obs = get_observability()
            obs.flush()
            if args.metrics_out:
                obs.write_metrics(args.metrics_out)
                print(f"wrote metrics snapshot to {args.metrics_out}")
            if args.trace:
                print(f"wrote trace to {args.trace}")
    finally:
        if exporter is not None:
            exporter.stop()
        if want_obs:
            disable()
    return 0


def _lint_one_campaign(campaign, partition: bool) -> List:
    """Lint one campaign, returning its findings.

    Binding errors (zero-match patterns, unknown modes …) are folded
    into the findings as ``invalid-campaign`` errors rather than
    aborting, so one broken spec does not hide the others' reports."""
    from repro.staticanalysis.lint import LintFinding

    target = create_target(campaign.target_name)
    findings: List = []
    partition_stats = None
    reference_duration = None
    try:
        target.read_campaign_data(campaign)
        program = target.workload_program()
    except ReproError as exc:
        findings.append(
            LintFinding(
                rule="invalid-campaign",
                severity="error",
                message=str(exc),
            )
        )
        # A fresh unbound target still provides the location space, so
        # the pattern checks can name the offending patterns.
        findings.extend(
            _lint(campaign, create_target(campaign.target_name)
                  .location_space())
        )
        return findings
    if partition and campaign.preinjection_mode == "equivalence":
        reference = target.prepare_run(campaign)
        reference_duration = reference.duration_cycles
        plans = {
            index: target.plan_experiment(index, reference)
            for index in range(campaign.n_experiments)
        }
        partition_stats = target._equivalence.partition(plans).stats()
    findings.extend(
        _lint(
            campaign,
            target.location_space(),
            program=program,
            reference_duration=reference_duration,
            partition_stats=partition_stats,
        )
    )
    return findings


def _lint(campaign, space, **kwargs) -> List:
    from repro.staticanalysis.lint import lint_campaign

    return lint_campaign(campaign, space, **kwargs)


def _cmd_lint(args) -> int:
    from repro.core.campaign import CampaignData
    from repro.staticanalysis.lint import lint_errors

    jobs = []  # (label, campaign)
    if args.spec:
        for path in args.spec:
            with open(path) as handle:
                jobs.append((path, CampaignData.from_json(handle.read())))
    if args.campaign:
        if not args.db:
            print(
                "goofi: error: --campaign needs --db", file=sys.stderr
            )
            return 2
        with GoofiDatabase(args.db) as db:
            jobs.append((args.campaign, db.load_campaign(args.campaign)))
    if not jobs:
        print(
            "goofi: error: nothing to lint — pass --spec FILE... or "
            "--db/--campaign",
            file=sys.stderr,
        )
        return 2
    n_errors = 0
    for label, campaign in jobs:
        findings = _lint_one_campaign(campaign, args.partition)
        errors = lint_errors(findings)
        n_errors += len(errors)
        status = "FAIL" if errors else "ok"
        print(f"{label}: {status} ({len(findings)} finding(s))")
        for finding in findings:
            print(f"  {finding}")
    return 1 if n_errors else 0


def _analyze_one(db, campaign_name: str, args):
    from repro.analysis import analyze_campaign

    return analyze_campaign(
        db,
        campaign_name,
        confidence=args.confidence,
        epsilon=args.half_width,
        batch_size=args.batch_size,
        time_bins=args.time_bins,
    )


def _cmd_analyze(args) -> int:
    import json

    from repro.analysis import diff_reports

    if args.gate and not args.diff:
        print("goofi: error: --gate needs --diff BASELINE", file=sys.stderr)
        return 2
    # Analytics never mutate: a read-only WAL connection sees the last
    # committed snapshot and cannot stall a live 'goofi run'/'goofi serve'
    # writer on the same file.
    with GoofiDatabase(args.db, readonly=True) as db:
        fresh = _analyze_one(db, args.campaign, args)
        if not args.diff:
            if args.json:
                print(json.dumps(fresh.to_dict(), indent=2, sort_keys=True))
            else:
                print(fresh.render())
            return 0
        fresh_config = db.load_campaign(args.campaign).to_dict()
        if args.diff_db and args.diff_db != args.db:
            with GoofiDatabase(args.diff_db, readonly=True) as base_db:
                base = _analyze_one(base_db, args.diff, args)
                base_config = base_db.load_campaign(args.diff).to_dict()
        else:
            base = _analyze_one(db, args.diff, args)
            base_config = db.load_campaign(args.diff).to_dict()
    diff = diff_reports(
        base, fresh, base_config, fresh_config, tolerance=args.tolerance
    )
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    if args.gate and diff.regressed:
        print(
            f"goofi: gate: {args.campaign} regressed vs {args.diff}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_rerun(args) -> int:
    with GoofiDatabase(args.db) as db:
        campaign = db.load_campaign(args.campaign)
        target = create_target(campaign.target_name)
        result = target.rerun_experiment(campaign, args.index, sink=db)
        print(f"re-ran {result.parent_experiment} as {result.name}")
        print(f"logged {len(result.detail_states)} per-instruction states")
    return 0


def _cmd_gen_analysis(args) -> int:
    script = generate_analysis_script(args.db, args.campaign)
    if args.output == "-":
        print(script)
    else:
        with open(args.output, "w") as handle:
            handle.write(script)
        print(f"wrote {args.output}")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import classify_campaign
    from repro.analysis.faultspace import compare_proportions
    from repro.analysis.report import render_comparison

    with GoofiDatabase(args.db) as db:
        summaries = []
        for name in args.campaigns:
            reference = db.load_reference(name)
            results = db.load_experiments(name)
            summaries.append(classify_campaign(results, reference))
        print(render_comparison(args.campaigns, summaries))
        print()
        a, b = summaries
        effect = compare_proportions(
            a.effective, a.total, b.effective, b.total
        )
        print(f"effectiveness:      {effect.describe()}")
        if a.effective and b.effective:
            coverage = compare_proportions(
                a.detected, a.effective, b.detected, b.effective
            )
            print(f"detection coverage: {coverage.describe()}")
    return 0


def _cmd_propagate(args) -> int:
    from repro.analysis import analyse_propagation

    with GoofiDatabase(args.db) as db:
        experiment = db.load_experiment(args.experiment)
        if not experiment.detail_states:
            print(
                f"goofi: error: experiment {args.experiment!r} has no "
                "detail-mode states; re-run it with 'goofi rerun'",
                file=sys.stderr,
            )
            return 1
        reference = db.load_reference(experiment.campaign_name)
        if not reference.detail_states:
            print(
                "goofi: error: the campaign reference has no detail-mode "
                "states",
                file=sys.stderr,
            )
            return 1
        report = analyse_propagation(
            reference.detail_states, experiment.detail_states
        )
        print(f"experiment: {experiment.name}")
        if experiment.injections:
            injection = experiment.injections[0]
            print(f"fault:      {injection.location.key()} at cycle "
                  f"{injection.time}")
        print(report.describe())
        if report.infected_counts:
            peak = max(report.infected_counts)
            bar_unit = max(1, peak // 40)
            print("infected cells per step:")
            for i, count in enumerate(report.infected_counts):
                if count or i == report.first_divergence_step:
                    print(f"  step {i:5d} |{'#' * (count // bar_unit)} {count}")
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro.service import FabricServer, ServiceConfig

    kwargs = {
        "db_path": args.db,
        "host": args.host,
        "port": args.port,
        "tenant_quota": args.tenant_quota,
        "max_queue": args.max_queue,
        "golden_cache_dir": args.golden_cache,
        "shard_size": args.shard_size,
        "start_method": args.start_method,
    }
    if args.workers is not None:
        kwargs["total_workers"] = args.workers
    config = ServiceConfig(**kwargs)
    server = FabricServer(config).start()
    # The announce line is a contract: scripts (CI's service smoke, the
    # examples in README) parse the URL out of it.
    print(f"fabric: serving on {server.url('')}", flush=True)
    print(
        f"fabric: db={config.db_path} workers={config.total_workers} "
        f"tenant-quota={config.tenant_quota}",
        flush=True,
    )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("fabric: shutting down", flush=True)
    finally:
        server.stop()
    return 0


def _fabric_client(url):
    from repro.service import FabricClient

    return FabricClient(url)


def _cmd_submit(args) -> int:
    import json

    with open(args.spec) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "campaign" not in document:
        document = {"campaign": document}
    document.setdefault("tenant", args.tenant)
    document.setdefault("priority", args.priority)
    document.setdefault("n_workers", args.workers)
    if args.no_golden_cache:
        document["use_golden_cache"] = False
    client = _fabric_client(args.url)
    record = client.submit(document)
    job_id = record["job_id"]
    print(f"submitted {job_id} ({record['campaign_name']}, "
          f"tenant={record['tenant']}, priority={record['priority']})")
    if not args.wait:
        return 0
    status = client.wait(job_id, timeout=args.timeout)
    result = status.get("result") or {}
    print(f"{job_id}: {status['state']} "
          f"(n_done={result.get('n_done', 0)}, "
          f"run_id={status.get('run_id')})")
    if status["state"] == "failed":
        print(f"goofi: error: {status.get('error')}", file=sys.stderr)
        return 1
    return 0


def _cmd_status(args) -> int:
    import json

    client = _fabric_client(args.url)
    if args.job:
        status = client.status(args.job)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        print(f"job:       {status['job_id']}")
        print(f"state:     {status['state']}")
        print(f"tenant:    {status['tenant']}")
        print(f"campaign:  {status['campaign_name']} "
              f"({status['n_experiments']} experiments)")
        print(f"workers:   {status['allocated_workers']}"
              f"/{status['n_workers']} requested")
        progress = status.get("progress")
        if progress:
            eta = progress.get("eta_seconds")
            print(f"progress:  {progress['n_done']}/{progress['n_total']} "
                  f"({progress['percent_done']:.1f}%), "
                  f"eta {'-' if eta is None else f'{eta:.1f}s'}")
            analysis = progress.get("analysis")
            if analysis and "ci_half_width" in analysis:
                rows = analysis.get("rows_processed")
                print(f"analysis:  CI half-width "
                      f"{analysis['ci_half_width']:.4f} over "
                      f"{int(rows) if rows is not None else '?'} rows")
        if status.get("error"):
            print(f"error:     {status['error']}")
        return 0
    info = client.info()
    jobs = client.jobs()
    if args.json:
        print(json.dumps({"info": info, "jobs": jobs}, indent=2,
                         sort_keys=True))
        return 0
    fleet = info["fleet"]
    print(f"service:   {info['service']} (db={info['db_path']})")
    print(f"fleet:     {fleet['busy_workers']}/{fleet['total_workers']} "
          f"workers busy, queue depth {info['queue_depth']}")
    for job in jobs:
        print(f"  {job['job_id']}  {job['state']:10s} "
              f"p{job['priority']:<3d} {job['tenant']:12s} "
              f"{job['campaign_name']}")
    return 0


def _cmd_results(args) -> int:
    import json

    client = _fabric_client(args.url)
    payload = client.results(args.job)
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(payload['rows'])} rows to {args.output}")
    return 0


def _cmd_faultspace(args) -> int:
    from repro.analysis.faultspace import campaign_fault_space

    with GoofiDatabase(args.db) as db:
        campaign = db.load_campaign(args.campaign)
        target = create_target(campaign.target_name)
        target.read_campaign_data(campaign)
        try:
            reference = db.load_reference(args.campaign)
            duration = reference.duration_cycles
            source = "stored reference run"
        except ReproError:
            reference = target.make_reference_run()
            duration = reference.duration_cycles
            source = "fresh reference run"
        space = campaign_fault_space(
            campaign, target.location_space(), duration
        )
        print(f"campaign:    {campaign.campaign_name}")
        print(f"fault space: {space.describe(campaign.n_experiments)}")
        print(f"duration:    {duration} cycles ({source})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "targets":
            for name in available_targets():
                print(name)
            return 0
        if args.command == "workloads":
            names = None
            if args.target:
                names = create_target(args.target).available_workloads()
            if names is None:
                names = available_workloads()
            for name in names:
                print(name)
            return 0
        if args.command == "techniques":
            for name in available_techniques():
                print(name)
            return 0
        if args.command == "configure":
            return _cmd_configure(args)
        if args.command == "tree":
            return _cmd_tree(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "merge":
            with GoofiDatabase(args.db) as db:
                window = CampaignSetupWindow(db)
                merged = window.merge(args.sources, args.into)
                print(f"merged {args.sources} into {merged.campaign_name!r} "
                      f"({merged.n_experiments} experiments)")
            return 0
        if args.command == "campaigns":
            with GoofiDatabase(args.db) as db:
                for name in db.list_campaigns():
                    print(name)
            return 0
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "rerun":
            return _cmd_rerun(args)
        if args.command == "gen-analysis":
            return _cmd_gen_analysis(args)
        if args.command == "port-skeleton":
            print(generate_port_skeleton(args.name, args.techniques))
            return 0
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "plan":
            from repro.analysis.faultspace import required_experiments

            n = required_experiments(
                args.proportion, args.half_width, args.confidence
            )
            print(
                f"{n} experiments give a +-{args.half_width:.0%} interval "
                f"at {args.confidence:.0%} confidence "
                f"(expected proportion {args.proportion:.2f})"
            )
            return 0
        if args.command == "propagate":
            return _cmd_propagate(args)
        if args.command == "faultspace":
            return _cmd_faultspace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "results":
            return _cmd_results(args)
        if args.command == "preview":
            with GoofiDatabase(args.db) as db:
                campaign = db.load_campaign(args.campaign)
                target = create_target(campaign.target_name)
                previews = target.preview_fault_list(campaign, args.count)
                print(f"{'exp':>5s} {'cycle':>8s} {'op':>7s}  location")
                for preview in previews:
                    for action in preview["actions"]:
                        for location in action["locations"]:
                            print(
                                f"{preview['index']:>5d} "
                                f"{action['time']:>8d} "
                                f"{action['op']:>7s}  {location}"
                            )
            return 0
        raise AssertionError(args.command)  # pragma: no cover
    except ReproError as exc:
        print(f"goofi: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
