"""Campaign set-up window (paper Figure 6).

The set-up phase in window form: pick a target, browse the hierarchical
list of fault-injection locations, choose locations, fault model, points
in time, workload, number of experiments and termination conditions; save
the result to ``CampaignData``; or modify / merge stored campaigns.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.campaign import CampaignData, EnvironmentSpec, FaultModelSpec
from repro.core.framework import Framework, create_target
from repro.core.triggers import TriggerSpec
from repro.db.database import GoofiDatabase
from repro.util.errors import ConfigurationError, ReproError
from repro.workloads import available_workloads


class CampaignSetupWindow:
    """Set-up-phase window: interactive campaign construction."""

    def __init__(self, db: Optional[GoofiDatabase] = None):
        self.db = db
        self.target: Optional[Framework] = None
        self._draft: dict = {
            "campaign_name": "",
            "target_name": "",
            "technique": "scifi",
            "workload_name": "bubblesort",
            "workload_params": {},
            "location_patterns": [],
            "n_experiments": 100,
            "seed": 1,
        }

    # -- selections (the window's input fields) -------------------------------

    def select_target(self, name: str, **target_kwargs) -> None:
        """Pick the target system; interprets its TargetSystemData."""
        self.target = create_target(name, **target_kwargs)
        self._draft["target_name"] = name

    def set_name(self, name: str) -> None:
        self._draft["campaign_name"] = name

    def set_technique(self, technique: str) -> None:
        self._draft["technique"] = technique

    def set_workload(self, name: str, **params) -> None:
        known = None
        if self.target is not None:
            known = self.target.available_workloads()
        if known is None:
            known = available_workloads()
        if name not in known:
            raise ConfigurationError(
                f"unknown workload {name!r}; available: {known}"
            )
        self._draft["workload_name"] = name
        self._draft["workload_params"] = params

    def choose_locations(self, patterns: List[str]) -> None:
        """Select fault-injection locations by pattern (the hierarchical
        tree's check-boxes)."""
        self._draft["location_patterns"] = list(patterns)

    def set_fault_model(self, spec: FaultModelSpec) -> None:
        self._draft["fault_model"] = spec.to_dict()

    def set_trigger(self, spec: TriggerSpec) -> None:
        self._draft["trigger"] = spec.to_dict()

    def set_experiments(self, count: int, seed: Optional[int] = None) -> None:
        self._draft["n_experiments"] = count
        if seed is not None:
            self._draft["seed"] = seed

    def set_termination(
        self,
        timeout_cycles: Optional[int] = None,
        max_iterations: Optional[int] = None,
    ) -> None:
        if timeout_cycles is not None:
            self._draft["timeout_cycles"] = timeout_cycles
        if max_iterations is not None:
            self._draft["max_iterations"] = max_iterations

    def set_environment(self, name: str, **params) -> None:
        self._draft["environment"] = EnvironmentSpec(
            name=name, params=params
        ).to_dict()

    def set_logging_mode(self, mode: str) -> None:
        self._draft["logging_mode"] = mode

    def set_preinjection(self, enabled: bool) -> None:
        self._draft["use_preinjection"] = enabled

    def set_protect_code(self, enabled: bool) -> None:
        self._draft["protect_code"] = enabled

    # -- the hierarchical location list ---------------------------------------

    def location_tree(self) -> str:
        """Render the Figure 6 hierarchical list for the chosen target."""
        target = self._require_target()
        # Bind a minimal campaign so the target knows its workload image
        # (memory locations depend on it).
        if self._draft.get("workload_name"):
            try:
                probe = self.build(validate_only=True)
                target.read_campaign_data(probe)
            except ReproError:
                pass
        return target.location_space().tree().render()

    def matching_locations(self, patterns: List[str]) -> int:
        """How many injectable bits the current selection covers."""
        target = self._require_target()
        return len(target.location_space().expand(patterns))

    # -- campaign construction / persistence ------------------------------------

    def build(self, validate_only: bool = False) -> CampaignData:
        draft = dict(self._draft)
        if validate_only and not draft["location_patterns"]:
            draft["location_patterns"] = ["scan:internal/cpu.pc"]
        if validate_only and not draft["campaign_name"]:
            draft["campaign_name"] = "-draft-"
        if "fault_model" in draft:
            draft["fault_model"] = FaultModelSpec.from_dict(draft["fault_model"])
        if "trigger" in draft:
            draft["trigger"] = TriggerSpec.from_dict(draft["trigger"])
        env = draft.get("environment")
        if env is not None:
            draft["environment"] = EnvironmentSpec.from_dict(env)
        return CampaignData(**{
            key: value
            for key, value in draft.items()
        })

    def save(self) -> CampaignData:
        """Store the campaign in CampaignData (set-up phase output)."""
        if self.db is None:
            raise ConfigurationError("no database attached to this window")
        campaign = self.build()
        self.db.save_campaign(campaign)
        return campaign

    def load(self, name: str) -> CampaignData:
        """Load stored campaign data for modification."""
        if self.db is None:
            raise ConfigurationError("no database attached to this window")
        campaign = self.db.load_campaign(name)
        self._draft = campaign.to_dict()
        # Drop derived None fields so build() round-trips.
        self._draft = {
            key: value for key, value in self._draft.items() if value is not None
        }
        return campaign

    def merge(self, names: List[str], new_name: str) -> CampaignData:
        """Merge stored campaigns into a new one (Figure 6 feature)."""
        if self.db is None:
            raise ConfigurationError("no database attached to this window")
        campaigns = [self.db.load_campaign(name) for name in names]
        merged = CampaignData.merge(new_name, campaigns)
        self.db.save_campaign(merged)
        return merged

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        draft = self._draft
        lines = [
            "Fault injection campaign definition",
            "=" * 50,
            f"campaign:    {draft.get('campaign_name') or '(unnamed)'}",
            f"target:      {draft.get('target_name') or '(none)'}",
            f"technique:   {draft.get('technique')}",
            f"workload:    {draft.get('workload_name')} {draft.get('workload_params')}",
            f"locations:   {draft.get('location_patterns')}",
            f"fault model: {draft.get('fault_model', FaultModelSpec().to_dict())}",
            f"trigger:     {draft.get('trigger', TriggerSpec().to_dict())}",
            f"experiments: {draft.get('n_experiments')} (seed {draft.get('seed')})",
        ]
        if draft.get("timeout_cycles") or draft.get("max_iterations"):
            lines.append(
                f"termination: timeout={draft.get('timeout_cycles')} "
                f"max_iterations={draft.get('max_iterations')}"
            )
        if draft.get("environment"):
            lines.append(f"environment: {draft['environment']}")
        return "\n".join(lines)

    def _require_target(self) -> Framework:
        if self.target is None:
            raise ConfigurationError("select a target system first")
        return self.target
