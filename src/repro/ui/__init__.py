"""Presentation layer: the GOOFI windows, headless.

The original tool is a Java Swing GUI; this environment has no display
toolkit, so each window is reproduced as a scriptable text-mode object
with the same behaviour: everything the user can configure or observe in
Figures 5-7 has a method here, and ``render()`` returns the window as
text. The ``goofi`` CLI (``repro.ui.app``) drives these windows from the
shell.
"""

from repro.ui.config_window import TargetConfigurationWindow
from repro.ui.campaign_window import CampaignSetupWindow
from repro.ui.progress_window import ProgressWindow

__all__ = [
    "TargetConfigurationWindow",
    "CampaignSetupWindow",
    "ProgressWindow",
]
