"""Target-system configuration window (paper Figure 5).

"The scan-chains are configured via a graphical user interface. Here, the
user enters the name and the position of possible fault injection
locations. This information is stored in the TargetSystemData database
table. Some locations in the scan-chain are read-only..."

For the simulated Thor RD the chain structure is discovered from the test
card rather than typed in, but the window keeps the same contract: review
the locations (with positions and read-only flags), optionally annotate
them, and persist everything to ``TargetSystemData``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.framework import Framework
from repro.db.database import GoofiDatabase
from repro.util.errors import ConfigurationError


class TargetConfigurationWindow:
    """Configuration-phase window: scan-chain layout -> TargetSystemData."""

    def __init__(self, target: Framework, db: Optional[GoofiDatabase] = None):
        self.target = target
        self.db = db
        self.annotations: Dict[str, str] = {}
        self._description = target.describe_target()

    # -- user actions -------------------------------------------------------

    def annotate(self, cell_path: str, note: str) -> None:
        """Attach a user note to one location (e.g. its silicon name)."""
        if not self._cell_exists(cell_path):
            raise ConfigurationError(f"no such location {cell_path!r}")
        self.annotations[cell_path] = note

    def save(self) -> None:
        """Persist the target description to TargetSystemData."""
        if self.db is None:
            raise ConfigurationError("no database attached to this window")
        description = dict(self._description)
        description["annotations"] = dict(self.annotations)
        self.db.save_target(description["name"], description)

    def load(self, name: str) -> dict:
        """Reload a stored target description."""
        if self.db is None:
            raise ConfigurationError("no database attached to this window")
        description = self.db.load_target(name)
        self.annotations = dict(description.get("annotations", {}))
        self._description = description
        return description

    # -- queries / rendering ---------------------------------------------------

    def locations(self) -> List[dict]:
        rows = []
        for chain_name, cells in self._description["chains"].items():
            for cell in cells:
                rows.append(
                    {
                        "chain": chain_name,
                        "path": cell["path"],
                        "position": cell["offset"],
                        "width": cell["width"],
                        "read_only": cell["read_only"],
                        "note": self.annotations.get(cell["path"], ""),
                    }
                )
        return rows

    def _cell_exists(self, cell_path: str) -> bool:
        return any(row["path"] == cell_path for row in self.locations())

    def render(self, max_rows: int = 0) -> str:
        name = self._description.get("name", "?")
        lines = [
            f"Target system configuration — {name}",
            "=" * 72,
            f"{'chain':10s} {'location':34s} {'pos':>5s} {'bits':>5s} {'mode':>6s}",
            "-" * 72,
        ]
        rows = self.locations()
        shown = rows if max_rows <= 0 else rows[:max_rows]
        for row in shown:
            mode = "r/o" if row["read_only"] else "r/w"
            lines.append(
                f"{row['chain']:10s} {row['path']:34s} "
                f"{row['position']:5d} {row['width']:5d} {mode:>6s}"
            )
        if max_rows > 0 and len(rows) > max_rows:
            lines.append(f"... {len(rows) - max_rows} more locations")
        lines.append("-" * 72)
        total = sum(row["width"] for row in rows)
        ro = sum(row["width"] for row in rows if row["read_only"])
        lines.append(
            f"{len(rows)} locations, {total} bits total "
            f"({total - ro} injectable, {ro} observe-only)"
        )
        return "\n".join(lines)
