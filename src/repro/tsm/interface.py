"""TargetSystemInterface for the TSM-1 board — the second port.

Deliberately a *partial* port: the common blocks, the SCIFI blocks and
the pre-runtime SWIFI block are implemented; runtime-SWIFI
instrumentation and the simulation baseline's direct-access block are
left as Framework stubs. The framework must therefore report exactly
``{"scifi", "swifi-pre"}`` support for this class and reject campaigns
asking for the other techniques — the Section 2 adaptation contract.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from repro.core.campaign import CampaignData
from repro.core.experiment import Injection, StateVector, Termination
from repro.core.faultmodels import InjectionAction, apply_op
from repro.core.framework import Framework, register_target
from repro.core.locations import FaultLocation, LocationCell, LocationSpace
from repro.core.trace import Trace, TraceStep
from repro.thor.testcard import DebugEventKind
from repro.tsm.board import TsmBoard
from repro.tsm.machine import TsmConfig
from repro.tsm.workloads import TsmWorkload, get_tsm_workload
from repro.util.bits import bit_get, bit_set
from repro.util.errors import CampaignError, TargetError

_MEM_PATH_RE = re.compile(r"^word\.0x([0-9a-fA-F]+)$")


@register_target("tsm-1")
class TsmInterface(Framework):
    """Port of GOOFI to the TSM-1 stack machine (SCIFI + pre-runtime
    SWIFI only)."""

    def __init__(self, config: Optional[TsmConfig] = None):
        super().__init__()
        self.board = TsmBoard(config)
        self._workload: Optional[TsmWorkload] = None
        self._space: Optional[LocationSpace] = None
        self._observe_cells: List[LocationCell] = []
        self._tracing = False
        self._trace = Trace()
        self._prev_cycles = 0
        self._detail = False
        self._detail_states: List[StateVector] = []
        self.board.on_step = self._on_step

    # ------------------------------------------------------------------
    # Campaign binding
    # ------------------------------------------------------------------

    def read_campaign_data(self, campaign: CampaignData) -> None:
        self._workload = get_tsm_workload(
            campaign.workload_name, campaign.workload_params
        )
        self._space = None
        super().read_campaign_data(campaign)
        self._observe_cells = self.location_space().select_cells(
            campaign.observe_patterns, writable_only=False
        )
        if not self._observe_cells:
            # The campaign's observe patterns were written for another
            # target; fall back to observing the whole internal chain.
            self._observe_cells = self.location_space().select_cells(
                ["scan:internal/*"], writable_only=False
            )
        if campaign.max_iterations is None:
            campaign.max_iterations = self._workload.default_max_iterations

    def available_workloads(self):
        from repro.tsm.workloads import available_tsm_workloads

        return available_tsm_workloads()

    # ------------------------------------------------------------------
    # Common blocks
    # ------------------------------------------------------------------

    def init_test_card(self) -> None:
        self.board.init()
        self._detail_states = []

    def load_workload(self) -> None:
        self.board.load_program(self._require_workload().program)

    def write_memory(self) -> None:
        for address, value in self._require_workload().input_writes.items():
            self.board.write_memory(address, value)

    def read_memory(self) -> Dict[str, int]:
        outputs: Dict[str, int] = {}
        for name, (base, count) in self._require_workload().outputs.items():
            if count == 1:
                outputs[name] = self.board.read_memory(base)
            else:
                for i in range(count):
                    outputs[f"{name}[{i}]"] = self.board.read_memory(base + i)
        return outputs

    def run_workload(self) -> None:
        pass  # nothing to arm: the TSM board has no environment port

    def wait_for_breakpoint(self, stop_cycle: int) -> Optional[Termination]:
        event = self.board.run(
            timeout_cycles=self._experiment_budget(),
            max_iterations=self._require_campaign().max_iterations,
            stop_cycle=stop_cycle,
        )
        if event.kind is DebugEventKind.BREAKPOINT:
            return None
        return self._terminate(event)

    def wait_for_termination(
        self, timeout_cycles: int, max_iterations: Optional[int]
    ) -> Termination:
        event = self.board.run(
            timeout_cycles=timeout_cycles, max_iterations=max_iterations
        )
        return self._terminate(event)

    @staticmethod
    def _terminate(event) -> Termination:
        if event.kind is DebugEventKind.HALT:
            return Termination(kind="halt", pc=event.pc, cycle=event.cycle)
        if event.kind is DebugEventKind.TIMEOUT:
            return Termination(kind="timeout", pc=event.pc, cycle=event.cycle)
        if event.kind is DebugEventKind.MAX_ITERATIONS:
            return Termination(
                kind="max_iterations",
                pc=event.pc,
                cycle=event.cycle,
                iterations=event.iteration,
            )
        if event.kind is DebugEventKind.TRAP:
            return Termination(
                kind="trap",
                pc=event.pc,
                cycle=event.cycle,
                trap_name=event.trap.trap.value,
                trap_detail=event.trap.detail,
            )
        raise TargetError(f"unexpected debug event {event.kind}")

    # ------------------------------------------------------------------
    # SCIFI blocks
    # ------------------------------------------------------------------

    def read_scan_chain(
        self, names: Optional[Sequence[str]] = None
    ) -> Dict[str, List[int]]:
        chain_names = self.board.chains if names is None else names
        return {name: self.board.read_chain(name) for name in chain_names}

    def write_scan_chain(self, chains: Dict[str, List[int]]) -> None:
        for name, bits in chains.items():
            self.board.write_chain(name, bits)

    def inject_fault(
        self, chains: Dict[str, List[int]], action: InjectionAction
    ) -> List[Injection]:
        injections = []
        for location in action.locations:
            if not location.space.startswith("scan:"):
                raise CampaignError(f"SCIFI cannot inject into {location.key()}")
            chain_name = location.space.split(":", 1)[1]
            chain = self.board.chain(chain_name)
            offset = chain.bit_offset(location.path, location.bit)
            before = chains[chain_name][offset]
            after = apply_op(before, action.op)
            chains[chain_name][offset] = after
            injections.append(
                Injection(
                    time=action.time,
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
        return injections

    # ------------------------------------------------------------------
    # Pre-runtime SWIFI block
    # ------------------------------------------------------------------

    def inject_fault_preruntime(self, action: InjectionAction) -> List[Injection]:
        injections = []
        for location in action.locations:
            match = _MEM_PATH_RE.match(location.path)
            if not match:
                raise CampaignError(f"bad memory location {location.key()}")
            address = int(match.group(1), 16)
            word = self.board.read_memory(address)
            before = bit_get(word, location.bit)
            after = apply_op(before, action.op)
            self.board.write_memory(address, bit_set(word, location.bit, after))
            injections.append(
                Injection(
                    time=0,
                    location=location,
                    op=action.op,
                    bit_before=before,
                    bit_after=after,
                )
            )
        return injections

    # ------------------------------------------------------------------
    # Observation / tracing
    # ------------------------------------------------------------------

    def location_space(self) -> LocationSpace:
        if self._space is not None:
            return self._space
        cells: List[LocationCell] = []
        for info in self.board.chain("internal").describe():
            cells.append(
                LocationCell(
                    space="scan:internal",
                    path=str(info["path"]),
                    width=int(info["width"]),
                    read_only=bool(info["read_only"]),
                )
            )
        workload = self._workload
        if workload is not None:
            for address in sorted(workload.program.words):
                kind = workload.program.kinds[address]
                cells.append(
                    LocationCell(
                        space=f"memory:{kind}",
                        path=f"word.0x{address:04x}",
                        width=32,
                    )
                )
        self._space = LocationSpace(cells)
        return self._space

    def capture_state_vector(self) -> StateVector:
        vector: StateVector = {}
        bits_cache: Dict[str, List[int]] = {}
        for cell in self._observe_cells:
            if cell.space.startswith("scan:"):
                chain_name = cell.space.split(":", 1)[1]
                if chain_name not in bits_cache:
                    bits_cache[chain_name] = self.board.read_chain(chain_name)
                chain = self.board.chain(chain_name)
                offset = chain.bit_offset(cell.path, 0)
                value = 0
                for i, bit in enumerate(
                    bits_cache[chain_name][offset : offset + cell.width]
                ):
                    value |= bit << i
                vector[cell.full_path] = value
            elif cell.space.startswith("memory:"):
                address = int(cell.path.split("0x", 1)[1], 16)
                vector[cell.full_path] = self.board.read_memory(address)
        return vector

    def start_trace(self) -> None:
        self._tracing = True
        self._trace = Trace()
        self._prev_cycles = self.board.machine.cycles

    def stop_trace(self) -> Trace:
        self._tracing = False
        return self._trace

    def set_detail_logging(self, enabled: bool) -> None:
        self._detail = enabled
        if enabled:
            self._detail_states = []

    def drain_detail_states(self) -> List[StateVector]:
        states = self._detail_states
        self._detail_states = []
        return states

    def _on_step(self, board: TsmBoard) -> None:
        if self._tracing:
            machine = board.machine
            self._trace.append(
                TraceStep(
                    index=len(self._trace),
                    pc=machine.last_pc,
                    cycle_before=self._prev_cycles,
                    cycle_after=machine.cycles,
                )
            )
            self._prev_cycles = machine.cycles
        if self._detail:
            self._detail_states.append(self.capture_state_vector())

    # ------------------------------------------------------------------
    # Target description
    # ------------------------------------------------------------------

    def describe_target(self) -> dict:
        config = self.board.machine.config
        return {
            "name": "tsm-1",
            "memory_size": config.memory_size,
            "data_stack_depth": config.data_stack_depth,
            "return_stack_depth": config.return_stack_depth,
            "chains": {
                name: chain.describe()
                for name, chain in self.board.chains.items()
            },
        }

    def _require_workload(self) -> TsmWorkload:
        if self._workload is None:
            raise CampaignError("no workload bound; call read_campaign_data")
        return self._workload
