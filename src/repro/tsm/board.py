"""The TSM-1 evaluation board: run control, scan access, download port.

Provides the same *capabilities* the THOR test card provides — not the
same class: ports are free to wrap their targets however fits, the
Framework only cares about the building-block methods the interface
implements on top.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.thor.scanchain import ScanCell, ScanChain
from repro.thor.testcard import DebugEvent, DebugEventKind
from repro.tsm.assembler import TsmProgram
from repro.tsm.machine import TsmConfig, TsmMachine
from repro.util.errors import TargetError


def build_tsm_chain(machine: TsmMachine) -> ScanChain:
    """Internal scan chain of the TSM-1: pc, stack pointers, both stack
    arrays, plus read-only counters."""
    config = machine.config
    addr_bits = max(1, (config.memory_size - 1).bit_length())
    sp_bits = max(1, config.data_stack_depth.bit_length())
    rsp_bits = max(1, config.return_stack_depth.bit_length())
    cells: List[ScanCell] = [
        ScanCell(
            path="tsm.pc",
            width=addr_bits,
            reader=(lambda: machine.pc & ((1 << addr_bits) - 1)),
            writer=(lambda v: setattr(machine, "pc", v)),
        ),
        ScanCell(
            path="tsm.sp",
            width=sp_bits,
            reader=(lambda: machine.sp),
            writer=(lambda v: setattr(machine, "sp", v)),
        ),
        ScanCell(
            path="tsm.rsp",
            width=rsp_bits,
            reader=(lambda: machine.rsp),
            writer=(lambda v: setattr(machine, "rsp", v)),
        ),
    ]
    for index in range(config.data_stack_depth):
        cells.append(
            ScanCell(
                path=f"tsm.dstack.s{index}",
                width=32,
                reader=(lambda m=machine, i=index: m.dstack[i]),
                writer=(lambda v, m=machine, i=index: m.dstack.__setitem__(i, v)),
            )
        )
    for index in range(config.return_stack_depth):
        cells.append(
            ScanCell(
                path=f"tsm.rstack.r{index}",
                width=addr_bits,
                reader=(
                    lambda m=machine, i=index, b=addr_bits:
                    m.rstack[i] & ((1 << b) - 1)
                ),
                writer=(lambda v, m=machine, i=index: m.rstack.__setitem__(i, v)),
            )
        )
    cells.append(
        ScanCell(path="tsm.cycle_counter", width=32,
                 reader=(lambda: machine.cycles & 0xFFFFFFFF))
    )
    return ScanChain("internal", cells)


class TsmBoard:
    """Evaluation board hosting one TSM-1 chip."""

    def __init__(self, config: Optional[TsmConfig] = None):
        self.machine = TsmMachine(config)
        self.chains: Dict[str, ScanChain] = {
            "internal": build_tsm_chain(self.machine)
        }
        self.program: Optional[TsmProgram] = None
        self.on_sync = None
        self.on_step = None
        self.total_scan_cycles = 0

    def init(self) -> None:
        self.machine.memory = [0] * self.machine.config.memory_size
        self.machine.reset(entry=0)
        self.program = None

    def load_program(self, program: TsmProgram) -> None:
        self.program = program
        self.machine.load_image(program.words)
        self.machine.reset(entry=program.entry)

    def write_memory(self, address: int, value: int) -> None:
        self.machine.memory[address] = value & 0xFFFFFFFF

    def read_memory(self, address: int) -> int:
        return self.machine.memory[address]

    def chain(self, name: str) -> ScanChain:
        chain = self.chains.get(name)
        if chain is None:
            raise TargetError(f"no scan chain {name!r} on TSM board")
        return chain

    def read_chain(self, name: str) -> List[int]:
        chain = self.chain(name)
        self.total_scan_cycles += chain.shift_cycles
        return chain.read()

    def write_chain(self, name: str, bits: List[int]) -> None:
        chain = self.chain(name)
        self.total_scan_cycles += chain.shift_cycles
        chain.write(bits)

    def run(
        self,
        timeout_cycles: int,
        max_iterations: Optional[int] = None,
        stop_cycle: Optional[int] = None,
    ) -> DebugEvent:
        machine = self.machine
        if machine.halted:
            raise TargetError("TSM is halted; re-initialise the board first")
        while True:
            if stop_cycle is not None and machine.cycles >= stop_cycle:
                return DebugEvent(
                    kind=DebugEventKind.BREAKPOINT,
                    pc=machine.pc,
                    cycle=machine.cycles,
                    reason=f"cycle>={stop_cycle}",
                )
            if machine.cycles >= timeout_cycles:
                return DebugEvent(
                    kind=DebugEventKind.TIMEOUT,
                    pc=machine.pc,
                    cycle=machine.cycles,
                )
            event = machine.step()
            if self.on_step is not None and (
                event is None or event.kind == "sync"
            ):
                self.on_step(self)
            if event is None:
                continue
            if event.kind == "halt":
                return DebugEvent(
                    kind=DebugEventKind.HALT, pc=machine.pc,
                    cycle=machine.cycles,
                )
            if event.kind == "sync":
                if self.on_sync is not None:
                    self.on_sync(self, event.iteration)
                if max_iterations is not None and event.iteration >= max_iterations:
                    return DebugEvent(
                        kind=DebugEventKind.MAX_ITERATIONS,
                        pc=machine.pc,
                        cycle=machine.cycles,
                        iteration=event.iteration,
                    )
                continue
            if event.kind == "trap":
                return DebugEvent(
                    kind=DebugEventKind.TRAP,
                    pc=machine.pc,
                    cycle=machine.cycles,
                    trap=event.trap,
                )
