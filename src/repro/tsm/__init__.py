"""TSM-1: a second, architecturally different target system.

The paper's central claim is that GOOFI's object-oriented architecture
makes porting to *new target systems* cheap: implement the Framework's
abstract building blocks, touch nothing else. The Thor RD port
(:mod:`repro.scifi`) exercises that claim once; this package exercises it
twice, with a target that shares nothing with THOR-lite:

* a **stack machine** (the real Thor CPU was a stack architecture running
  Ada) — no register file, a data stack and a return stack instead,
* no caches and therefore no parity mechanisms; its characteristic EDMs
  are **stack overflow/underflow detection** plus illegal opcode/address,
* a much shorter internal scan chain, and its own tiny assembler and
  workload set.

The port (:class:`repro.tsm.interface.TsmInterface`) implements the
common, SCIFI and pre-runtime-SWIFI blocks only — deliberately *not*
runtime SWIFI — so the framework's technique-support introspection and
validation paths are exercised by a genuine partial port.
"""

from repro.tsm.machine import TsmConfig, TsmMachine
from repro.tsm.board import TsmBoard
from repro.tsm.interface import TsmInterface

__all__ = ["TsmConfig", "TsmMachine", "TsmBoard", "TsmInterface"]
