"""The TSM-1 stack machine core.

A 0-operand stack architecture: 16-bit instruction words, a 16-entry data
stack, an 8-entry return stack, word-addressed memory. All arithmetic
happens on the top of the data stack.

Instruction format::

    15     10 9            0
    +--------+--------------+
    | opcode |   operand    |   operand: 10-bit unsigned (addresses,
    +--------+--------------+   immediates; PUSHI sign-extends)

Error-detection mechanisms: illegal opcode, illegal address, data-stack
overflow/underflow, return-stack overflow/underflow, divide-by-zero and
an (optional) watchdog — stack-bound checking replaces the cache parity
of the Thor RD as the characteristic hardware EDM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.thor.traps import Trap, TrapEvent  # shared EDM vocabulary
from repro.util.bits import to_signed, to_unsigned

WORD_MASK = 0xFFFFFFFF
OPERAND_BITS = 10
OPERAND_MASK = (1 << OPERAND_BITS) - 1


class TsmOp(enum.IntEnum):
    NOP = 0x00
    HALT = 0x01
    PUSHI = 0x02   # push sign-extended operand
    LOAD = 0x03    # addr on stack -> value
    STORE = 0x04   # (value, addr) popped; mem[addr] = value
    ADD = 0x05
    SUB = 0x06
    MUL = 0x07
    DIV = 0x08
    DUP = 0x09
    DROP = 0x0A
    SWAP = 0x0B
    OVER = 0x0C
    JMP = 0x0D     # absolute operand
    JZ = 0x0E      # pop; jump if zero
    JNZ = 0x0F
    CALL = 0x10
    RET = 0x11
    SYNC = 0x12
    LOADI = 0x13   # mem[operand] -> push  (direct-address load)
    STOREI = 0x14  # pop -> mem[operand]   (direct-address store)
    INC = 0x15
    DEC = 0x16


_VALID = {int(op) for op in TsmOp}

# Additional stack-underflow trap names mapped onto the shared Trap enum:
# overflow/underflow of the machine's stacks are reported as a dedicated
# detail on the OVERFLOW trap kind (the mechanism label the analysis
# phase groups by is trap_name + detail-free, so use distinct details).
STACK_FAULT = Trap.OVERFLOW


def encode(op: TsmOp, operand: int = 0) -> int:
    if not 0 <= operand <= OPERAND_MASK:
        raise ValueError(f"operand out of range: {operand}")
    return (int(op) << OPERAND_BITS) | operand


def decode(word: int) -> tuple:
    op_field = (word >> OPERAND_BITS) & 0x3F
    if op_field not in _VALID:
        return None, 0
    return TsmOp(op_field), word & OPERAND_MASK


@dataclass(frozen=True)
class TsmConfig:
    memory_size: int = 4096
    data_stack_depth: int = 16
    return_stack_depth: int = 8
    watchdog_cycles: Optional[int] = None


@dataclass(frozen=True)
class TsmEvent:
    kind: str  # "halt" | "trap" | "sync"
    trap: Optional[TrapEvent] = None
    iteration: int = 0


class TsmHalted(Exception):
    pass


class TsmMachine:
    """One TSM-1 chip."""

    def __init__(self, config: Optional[TsmConfig] = None):
        self.config = config or TsmConfig()
        self.memory: List[int] = [0] * self.config.memory_size
        self.dstack: List[int] = [0] * self.config.data_stack_depth
        self.rstack: List[int] = [0] * self.config.return_stack_depth
        self.sp = 0   # number of live data-stack entries
        self.rsp = 0  # number of live return-stack entries
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.iterations = 0
        self.halted = False
        self.trap_event: Optional[TrapEvent] = None
        self.last_pc = 0

    # -- lifecycle ---------------------------------------------------------

    def reset(self, entry: int = 0) -> None:
        self.dstack = [0] * self.config.data_stack_depth
        self.rstack = [0] * self.config.return_stack_depth
        self.sp = 0
        self.rsp = 0
        self.pc = entry
        self.cycles = 0
        self.instret = 0
        self.iterations = 0
        self.halted = False
        self.trap_event = None
        self.last_pc = entry

    def load_image(self, image: dict) -> None:
        for address, value in image.items():
            self.memory[address] = value & WORD_MASK

    # -- trap path -----------------------------------------------------------

    def _trap(self, trap: Trap, detail: str = "") -> TsmEvent:
        event = TrapEvent(trap=trap, pc=self.pc, cycle=self.cycles,
                          detail=detail)
        self.trap_event = event
        self.halted = True
        return TsmEvent(kind="trap", trap=event)

    # -- stack helpers (bound-checked: the machine's signature EDMs) ---------

    def _push(self, value: int) -> Optional[TsmEvent]:
        # sp is a physical register wider than the stack is deep (its scan
        # cell spans the full binary range), so a corrupted pointer may
        # exceed the array: the bound checker reports it as overflow.
        if self.sp >= self.config.data_stack_depth:
            return self._trap(STACK_FAULT, detail="data-stack overflow")
        self.dstack[self.sp] = value & WORD_MASK
        self.sp += 1
        return None

    def _pop(self) -> tuple:
        if self.sp <= 0:
            return None, self._trap(STACK_FAULT, detail="data-stack underflow")
        if self.sp > self.config.data_stack_depth:
            return None, self._trap(STACK_FAULT, detail="data-stack overflow")
        self.sp -= 1
        return self.dstack[self.sp], None

    # -- execution ----------------------------------------------------------

    def step(self) -> Optional[TsmEvent]:
        if self.halted:
            raise TsmHalted("machine is halted")
        if not 0 <= self.pc < self.config.memory_size:
            return self._trap(Trap.ILLEGAL_ADDRESS,
                              detail=f"fetch from {self.pc:#x}")
        self.last_pc = self.pc
        word = self.memory[self.pc]
        op, operand = decode(word)
        if op is None:
            return self._trap(Trap.ILLEGAL_OPCODE, detail=f"word {word:#x}")

        self.cycles += 2 if op in (TsmOp.MUL, TsmOp.DIV) else 1
        next_pc = self.pc + 1
        event: Optional[TsmEvent] = None

        if op is TsmOp.NOP:
            pass
        elif op is TsmOp.HALT:
            self.halted = True
            event = TsmEvent(kind="halt")
        elif op is TsmOp.SYNC:
            self.iterations += 1
            event = TsmEvent(kind="sync", iteration=self.iterations)
        elif op is TsmOp.PUSHI:
            value = operand
            if value & (1 << (OPERAND_BITS - 1)):
                value -= 1 << OPERAND_BITS
            event = self._push(to_unsigned(value))
        elif op is TsmOp.LOADI:
            event = self._push(self.memory[operand])
        elif op is TsmOp.STOREI:
            value, event = self._pop()
            if event is None:
                self.memory[operand] = value
        elif op is TsmOp.LOAD:
            address, event = self._pop()
            if event is None:
                if address >= self.config.memory_size:
                    event = self._trap(Trap.ILLEGAL_ADDRESS,
                                       detail=f"load {address:#x}")
                else:
                    event = self._push(self.memory[address])
        elif op is TsmOp.STORE:
            address, event = self._pop()
            if event is None:
                value, event = self._pop()
            if event is None:
                if address >= self.config.memory_size:
                    event = self._trap(Trap.ILLEGAL_ADDRESS,
                                       detail=f"store {address:#x}")
                else:
                    self.memory[address] = value
        elif op in (TsmOp.ADD, TsmOp.SUB, TsmOp.MUL, TsmOp.DIV):
            b, event = self._pop()
            a = None
            if event is None:
                a, event = self._pop()
            if event is None:
                if op is TsmOp.ADD:
                    result = a + b
                elif op is TsmOp.SUB:
                    result = a - b
                elif op is TsmOp.MUL:
                    result = to_signed(a) * to_signed(b)
                else:
                    if to_signed(b) == 0:
                        event = self._trap(Trap.DIV_ZERO)
                    else:
                        result = int(to_signed(a) / to_signed(b))
                if event is None:
                    event = self._push(to_unsigned(result))
        elif op is TsmOp.INC:
            value, event = self._pop()
            if event is None:
                event = self._push(to_unsigned(value + 1))
        elif op is TsmOp.DEC:
            value, event = self._pop()
            if event is None:
                event = self._push(to_unsigned(value - 1))
        elif op is TsmOp.DUP:
            value, event = self._pop()
            if event is None:
                event = self._push(value) or self._push(value)
        elif op is TsmOp.DROP:
            _, event = self._pop()
        elif op is TsmOp.SWAP:
            b, event = self._pop()
            if event is None:
                a, event = self._pop()
                if event is None:
                    event = self._push(b) or self._push(a)
        elif op is TsmOp.OVER:
            if self.sp < 2:
                event = self._trap(STACK_FAULT, detail="data-stack underflow")
            elif self.sp > self.config.data_stack_depth:
                event = self._trap(STACK_FAULT, detail="data-stack overflow")
            else:
                event = self._push(self.dstack[self.sp - 2])
        elif op is TsmOp.JMP:
            next_pc = operand
        elif op in (TsmOp.JZ, TsmOp.JNZ):
            value, event = self._pop()
            if event is None:
                taken = (value == 0) if op is TsmOp.JZ else (value != 0)
                if taken:
                    next_pc = operand
        elif op is TsmOp.CALL:
            if self.rsp >= self.config.return_stack_depth:
                event = self._trap(STACK_FAULT, detail="return-stack overflow")
            else:
                self.rstack[self.rsp] = self.pc + 1
                self.rsp += 1
                next_pc = operand
        elif op is TsmOp.RET:
            if self.rsp <= 0:
                event = self._trap(STACK_FAULT, detail="return-stack underflow")
            elif self.rsp > self.config.return_stack_depth:
                event = self._trap(STACK_FAULT, detail="return-stack overflow")
            else:
                self.rsp -= 1
                next_pc = self.rstack[self.rsp]
        else:  # pragma: no cover
            raise AssertionError(op)

        if event is not None and event.kind == "trap":
            return event
        self.pc = next_pc
        self.instret += 1
        if (
            self.config.watchdog_cycles is not None
            and self.cycles > self.config.watchdog_cycles
        ):
            return self._trap(Trap.WATCHDOG)
        return event
