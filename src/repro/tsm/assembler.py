"""Mini-assembler for TSM-1 stack programs.

Syntax (one instruction per line, ';' comments, labels end with ':')::

    start:
        pushi 10        ; immediates are signed 10-bit
        storei counter
    loop:
        loadi counter
        jz   done
        loadi counter
        dec
        storei counter
        jmp  loop
    done:
        halt
    counter: word 0     ; data word

Addresses and immediates may be labels. ``word v`` emits a data word.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.tsm.machine import OPERAND_MASK, TsmOp, encode
from repro.util.errors import AssemblerError

_NO_OPERAND = {
    "nop": TsmOp.NOP,
    "halt": TsmOp.HALT,
    "load": TsmOp.LOAD,
    "store": TsmOp.STORE,
    "add": TsmOp.ADD,
    "sub": TsmOp.SUB,
    "mul": TsmOp.MUL,
    "div": TsmOp.DIV,
    "dup": TsmOp.DUP,
    "drop": TsmOp.DROP,
    "swap": TsmOp.SWAP,
    "over": TsmOp.OVER,
    "ret": TsmOp.RET,
    "sync": TsmOp.SYNC,
    "inc": TsmOp.INC,
    "dec": TsmOp.DEC,
}
_WITH_OPERAND = {
    "pushi": TsmOp.PUSHI,
    "jmp": TsmOp.JMP,
    "jz": TsmOp.JZ,
    "jnz": TsmOp.JNZ,
    "call": TsmOp.CALL,
    "loadi": TsmOp.LOADI,
    "storei": TsmOp.STOREI,
}


@dataclass
class TsmProgram:
    words: Dict[int, int] = field(default_factory=dict)
    kinds: Dict[int, str] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0


def _parse(text: str) -> List[Tuple[int, str, str, str]]:
    rows = []
    for number, raw in enumerate(text.splitlines(), 1):
        line = raw.split(";")[0].strip()
        if not line:
            continue
        label = ""
        if ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not re.fullmatch(r"[A-Za-z_]\w*", label):
                raise AssemblerError(f"bad label {label!r}", number)
            line = line.strip()
        mnemonic, _, operand = line.partition(" ")
        rows.append((number, label, mnemonic.lower(), operand.strip()))
    return rows


def assemble_tsm(text: str, origin: int = 0x10) -> TsmProgram:
    rows = _parse(text)
    # Pass 1: label addresses.
    symbols: Dict[str, int] = {}
    pc = origin
    for number, label, mnemonic, operand in rows:
        if label:
            if label in symbols:
                raise AssemblerError(f"duplicate label {label!r}", number)
            symbols[label] = pc
        if mnemonic:
            pc += 1

    def value_of(token: str, number: int) -> int:
        token = token.strip()
        if not token:
            raise AssemblerError("missing operand", number)
        negative = token.startswith("-")
        if negative:
            token = token[1:]
        if re.fullmatch(r"0[xX][0-9a-fA-F]+", token):
            value = int(token, 16)
        elif token.isdigit():
            value = int(token)
        elif token in symbols:
            value = symbols[token]
        else:
            raise AssemblerError(f"undefined symbol {token!r}", number)
        return -value if negative else value

    program = TsmProgram(symbols=dict(symbols), entry=origin)
    if "start" in symbols:
        program.entry = symbols["start"]

    # Pass 2: encode.
    pc = origin
    for number, label, mnemonic, operand in rows:
        if not mnemonic:
            continue
        if mnemonic == "word":
            program.words[pc] = value_of(operand, number) & 0xFFFFFFFF
            program.kinds[pc] = "data"
        elif mnemonic in _NO_OPERAND:
            if operand:
                raise AssemblerError(f"{mnemonic} takes no operand", number)
            program.words[pc] = encode(_NO_OPERAND[mnemonic])
            program.kinds[pc] = "code"
        elif mnemonic in _WITH_OPERAND:
            value = value_of(operand, number)
            if mnemonic == "pushi":
                if not -(1 << 9) <= value < (1 << 9):
                    raise AssemblerError(
                        f"pushi immediate out of range: {value}", number
                    )
                value &= OPERAND_MASK
            elif not 0 <= value <= OPERAND_MASK:
                raise AssemblerError(f"operand out of range: {value}", number)
            program.words[pc] = encode(_WITH_OPERAND[mnemonic], value)
            program.kinds[pc] = "code"
        else:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", number)
        pc += 1
    return program
