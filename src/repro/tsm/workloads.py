"""Workloads for the TSM-1 target (its own mini programs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.tsm.assembler import TsmProgram, assemble_tsm
from repro.util.errors import ConfigurationError

_SUMSQ = """
; sum of squares 1..n -> result
start:
    pushi {N}
    storei counter
    pushi 0
    storei acc
loop:
    loadi counter
    jz done
    loadi counter
    dup
    mul
    loadi acc
    add
    storei acc
    loadi counter
    dec
    storei counter
    jmp loop
done:
    loadi acc
    storei result
    halt
counter: word 0
acc:     word 0
result:  word 0
"""

_FACT = """
; recursive factorial via CALL/RET (return-stack depth = n+1)
start:
    loadi n
    call fact
    storei result
    halt
fact:               ; ( n -- n! )
    dup
    jz base
    dup
    dec
    call fact
    mul
    ret
base:
    drop
    pushi 1
    ret
n:      word {N}
result: word 0
"""

_COUNT_LOOP = """
; infinite loop: increment a counter, SYNC each iteration
start:
    pushi 0
    storei counter
loop:
    loadi counter
    inc
    storei counter
    sync
    jmp loop
counter: word 0
"""


@dataclass
class TsmWorkload:
    name: str
    description: str
    program: TsmProgram
    input_writes: Dict[int, int] = field(default_factory=dict)
    outputs: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    expected: Dict[str, List[int]] = field(default_factory=dict)
    is_loop: bool = False
    default_max_iterations: int = None


_BUILDERS: Dict[str, Callable[..., TsmWorkload]] = {}


def register(name: str):
    def decorator(builder):
        _BUILDERS[name] = builder
        return builder

    return decorator


def available_tsm_workloads() -> List[str]:
    return sorted(_BUILDERS)


def get_tsm_workload(name: str, params: dict = None) -> TsmWorkload:
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown TSM workload {name!r}; "
            f"available: {available_tsm_workloads()}"
        )
    return builder(**(params or {}))


@register("sumsq")
def sumsq(n: int = 10) -> TsmWorkload:
    """Sum of squares 1..n."""
    program = assemble_tsm(_SUMSQ.replace("{N}", str(n)))
    return TsmWorkload(
        name="sumsq",
        description=f"sum of squares 1..{n}",
        program=program,
        outputs={"result": (program.symbols["result"], 1)},
        expected={"result": [sum(i * i for i in range(1, n + 1)) & 0xFFFFFFFF]},
    )


@register("factorial")
def factorial(n: int = 5) -> TsmWorkload:
    """Recursive factorial (stresses the return stack; n+1 frames)."""
    import math

    program = assemble_tsm(_FACT.replace("{N}", str(n)))
    return TsmWorkload(
        name="factorial",
        description=f"recursive {n}!",
        program=program,
        outputs={"result": (program.symbols["result"], 1)},
        expected={"result": [math.factorial(n) & 0xFFFFFFFF]},
    )


@register("countloop")
def countloop() -> TsmWorkload:
    """Infinite SYNC loop (iteration-bounded)."""
    program = assemble_tsm(_COUNT_LOOP)
    return TsmWorkload(
        name="countloop",
        description="infinite counting loop",
        program=program,
        outputs={"counter": (program.symbols["counter"], 1)},
        expected={},
        is_loop=True,
        default_max_iterations=20,
    )
