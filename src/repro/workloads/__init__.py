"""Workload library: target programs for fault-injection campaigns.

Every workload is real THOR-lite assembly, assembled at build time, with
its input data written through the test card's download port (the
``writeMemory`` building block) and its outputs read back after
termination (``readMemory``). Golden outputs are computed in Python so
the test suite can verify fault-free execution end to end.
"""

from repro.workloads.library import (
    WorkloadDefinition,
    available_workloads,
    get_workload,
    register_workload,
)

# Import the program modules for their registration side effects.
from repro.workloads import (  # noqa: E402,F401
    arith,
    control,
    multitask,
    search,
    sort,
)

__all__ = [
    "WorkloadDefinition",
    "available_workloads",
    "get_workload",
    "register_workload",
]
