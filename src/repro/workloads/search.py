"""Search and number-theory workloads.

``binsearch`` is branch-heavy (dense CMP/branch traffic makes PSR faults
effective), ``countprimes`` is divider-heavy (MOD in the inner loop gives
the DIV_ZERO detection mechanism real exposure under injected faults).
"""

from __future__ import annotations

from repro.workloads.library import (
    WorkloadDefinition,
    build,
    make_input_values,
    register_workload,
)

_BINSEARCH_SRC = """
; for each key in keys[0..m-1], binary-search arr[0..n-1] (sorted);
; found[i] = index or -1.
start:
    ldi  sp, 0xF000
    ldi  r9, 0             ; key index
key_loop:
    cmpi r9, {M}
    bge  finish
    ldi  r1, keys
    add  r1, r1, r9
    ld   r2, [r1+0]        ; key
    ldi  r3, 0             ; lo
    ldi  r4, {N}
    subi r4, r4, 1         ; hi
    ldi  r8, -1            ; result
bs_loop:
    cmp  r3, r4
    bgt  bs_done
    add  r5, r3, r4
    ldi  r6, 2
    div  r5, r5, r6        ; mid
    ldi  r6, arr
    add  r6, r6, r5
    ld   r7, [r6+0]        ; arr[mid]
    cmp  r7, r2
    beq  bs_found
    blt  bs_right
    mov  r4, r5
    subi r4, r4, 1
    jmp  bs_loop
bs_right:
    mov  r3, r5
    addi r3, r3, 1
    jmp  bs_loop
bs_found:
    mov  r8, r5
bs_done:
    ldi  r1, found
    add  r1, r1, r9
    st   r8, [r1+0]
    addi r9, r9, 1
    jmp  key_loop
finish:
    halt
arr:
    .space {N}
keys:
    .space {M}
found:
    .space {M}
"""


@register_workload("binsearch")
def binsearch(n: int = 16, m: int = 6, seed: int = 13) -> WorkloadDefinition:
    """Binary search of ``m`` keys in a sorted ``n``-word array; half the
    keys are present, half absent."""
    source = _BINSEARCH_SRC.replace("{N}", str(n)).replace("{M}", str(m))
    program = build(source)
    values = sorted(set(make_input_values(n * 2, seed, lo=0, hi=9999)))[:n]
    while len(values) < n:
        values.append(values[-1] + 1)
    rng_keys = []
    for i in range(m):
        if i % 2 == 0:
            rng_keys.append(values[(i * 7) % n])  # present
        else:
            rng_keys.append(10_000 + i)  # absent
    inputs = {}
    for i, value in enumerate(values):
        inputs[program.symbols["arr"] + i] = value
    for i, key in enumerate(rng_keys):
        inputs[program.symbols["keys"] + i] = key
    expected = []
    for key in rng_keys:
        expected.append(values.index(key) if key in values else 0xFFFFFFFF)
    return WorkloadDefinition(
        name="binsearch",
        description=f"binary search of {m} keys in {n} sorted words",
        program=program,
        input_writes=inputs,
        outputs={"found": (program.symbols["found"], m)},
        expected={"found": expected},
    )


_PRIMES_SRC = """
; count primes in [2, n] by trial division -> count.
start:
    ldi  sp, 0xF000
    ldi  r1, 2             ; candidate
    ldi  r2, 0             ; count
cand_loop:
    cmpi r1, {N}
    bgt  finish
    ldi  r3, 2             ; divisor
div_loop:
    mul  r4, r3, r3
    cmp  r4, r1
    bgt  is_prime          ; divisor^2 > candidate: prime
    mod  r5, r1, r3
    cmpi r5, 0
    beq  not_prime
    addi r3, r3, 1
    jmp  div_loop
is_prime:
    addi r2, r2, 1
not_prime:
    addi r1, r1, 1
    jmp  cand_loop
finish:
    ldi  r6, count
    st   r2, [r6+0]
    halt
count:
    .word 0
"""


def _count_primes(n: int) -> int:
    count = 0
    for candidate in range(2, n + 1):
        divisor = 2
        prime = True
        while divisor * divisor <= candidate:
            if candidate % divisor == 0:
                prime = False
                break
            divisor += 1
        if prime:
            count += 1
    return count


@register_workload("countprimes")
def countprimes(n: int = 60) -> WorkloadDefinition:
    """Count primes up to ``n`` by trial division (MOD-heavy)."""
    program = build(_PRIMES_SRC.replace("{N}", str(n)))
    return WorkloadDefinition(
        name="countprimes",
        description=f"count primes up to {n}",
        program=program,
        input_writes={},
        outputs={"count": (program.symbols["count"], 1)},
        expected={"count": [_count_primes(n)]},
    )
