"""Workload registry and the WorkloadDefinition value object."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.thor.assembler import Program, assemble
from repro.util.bits import to_unsigned
from repro.util.errors import ConfigurationError


@dataclass
class WorkloadDefinition:
    """One runnable workload: program image + I/O contract."""

    name: str
    description: str
    program: Program
    # Initial input data, downloaded with writeMemory before the run.
    input_writes: Dict[int, int] = field(default_factory=dict)
    # Output windows read back with readMemory: name -> (base address, words).
    outputs: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # Golden output values for fault-free execution (name -> words).
    expected: Dict[str, List[int]] = field(default_factory=dict)
    # Loop workloads never HALT; the campaign bounds their iterations.
    is_loop: bool = False
    default_max_iterations: Optional[int] = None
    uses_environment: bool = False

    def output_addresses(self) -> List[int]:
        addresses: List[int] = []
        for base, count in self.outputs.values():
            addresses.extend(range(base, base + count))
        return addresses

    def label(self, name: str) -> int:
        value = self.program.symbols.get(name)
        if value is None:
            raise ConfigurationError(
                f"workload {self.name!r} has no label {name!r}"
            )
        return value


_BUILDERS: Dict[str, Callable[..., WorkloadDefinition]] = {}


def register_workload(name: str):
    """Decorator: register a workload builder under ``name``."""

    def decorator(builder: Callable[..., WorkloadDefinition]):
        if name in _BUILDERS:
            raise ConfigurationError(f"workload {name!r} already registered")
        _BUILDERS[name] = builder
        builder.workload_name = name
        return builder

    return decorator


def available_workloads() -> List[str]:
    return sorted(_BUILDERS)


def get_workload(name: str, params: Optional[dict] = None) -> WorkloadDefinition:
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        )
    return builder(**(params or {}))


def make_input_values(n: int, seed: int, lo: int = 0, hi: int = 9999) -> List[int]:
    """Deterministic pseudo-random workload input data."""
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(n)]


def signed_words(values: List[int]) -> List[int]:
    """Two's-complement encode a list of (possibly negative) integers."""
    return [to_unsigned(v) for v in values]


def build(source: str, origin: int = 0x100) -> Program:
    return assemble(source, origin=origin)
