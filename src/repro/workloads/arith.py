"""Arithmetic workloads: matrix multiply, Fibonacci, CRC and vector sum.

These cover distinct architectural profiles: matmul is multiply-heavy
with 2-D addressing, Fibonacci is call/return-free tight looping, the CRC
stresses the shifter and XOR datapath, and vecsum is the minimal
load-accumulate loop used by quick smoke campaigns.
"""

from __future__ import annotations

from typing import List

from repro.workloads.library import (
    WorkloadDefinition,
    build,
    make_input_values,
    register_workload,
)

_MATMUL_SRC = """
; c = a * b for DIM x DIM row-major matrices.
start:
    ldi  sp, 0xF000
    ldi  r1, 0             ; i
row:
    cmpi r1, {DIM}
    bge  finish
    ldi  r2, 0             ; j
col:
    cmpi r2, {DIM}
    bge  row_next
    ldi  r3, 0             ; acc
    ldi  r4, 0             ; k
dot:
    cmpi r4, {DIM}
    bge  dot_done
    ; a[i][k]
    muli r5, r1, {DIM}
    add  r5, r5, r4
    ldi  r6, mat_a
    add  r6, r6, r5
    ld   r7, [r6+0]
    ; b[k][j]
    muli r5, r4, {DIM}
    add  r5, r5, r2
    ldi  r6, mat_b
    add  r6, r6, r5
    ld   r8, [r6+0]
    mul  r7, r7, r8
    add  r3, r3, r7
    addi r4, r4, 1
    jmp  dot
dot_done:
    muli r5, r1, {DIM}
    add  r5, r5, r2
    ldi  r6, mat_c
    add  r6, r6, r5
    st   r3, [r6+0]
    addi r2, r2, 1
    jmp  col
row_next:
    addi r1, r1, 1
    jmp  row
finish:
    halt
mat_a:
    .space {CELLS}
mat_b:
    .space {CELLS}
mat_c:
    .space {CELLS}
"""


@register_workload("matmul")
def matmul(dim: int = 4, seed: int = 3) -> WorkloadDefinition:
    """Row-major ``dim`` x ``dim`` integer matrix multiplication."""
    cells = dim * dim
    src = _MATMUL_SRC.replace("{DIM}", str(dim)).replace("{CELLS}", str(cells))
    program = build(src)
    a = make_input_values(cells, seed, lo=0, hi=99)
    b = make_input_values(cells, seed + 1, lo=0, hi=99)
    inputs = {}
    for i, value in enumerate(a):
        inputs[program.symbols["mat_a"] + i] = value
    for i, value in enumerate(b):
        inputs[program.symbols["mat_b"] + i] = value
    expected: List[int] = []
    for i in range(dim):
        for j in range(dim):
            acc = sum(a[i * dim + k] * b[k * dim + j] for k in range(dim))
            expected.append(acc & 0xFFFFFFFF)
    return WorkloadDefinition(
        name="matmul",
        description=f"{dim}x{dim} integer matrix multiply (seed {seed})",
        program=program,
        input_writes=inputs,
        outputs={"product": (program.symbols["mat_c"], cells)},
        expected={"product": expected},
    )


_FIB_SRC = """
; fib[i] for i in 0..n-1, modulo 2^32.
start:
    ldi  sp, 0xF000
    ldi  r1, 0             ; a
    ldi  r2, 1             ; b
    ldi  r3, 0             ; i
    ldi  r4, out
floop:
    cmpi r3, {N}
    bge  finish
    add  r5, r4, r3
    st   r1, [r5+0]
    add  r6, r1, r2
    mov  r1, r2
    mov  r2, r6
    addi r3, r3, 1
    jmp  floop
finish:
    halt
out:
    .space {N}
"""


@register_workload("fibonacci")
def fibonacci(n: int = 24) -> WorkloadDefinition:
    """First ``n`` Fibonacci numbers modulo 2^32."""
    program = build(_FIB_SRC.replace("{N}", str(n)))
    expected = []
    a, b = 0, 1
    for _ in range(n):
        expected.append(a & 0xFFFFFFFF)
        a, b = b, (a + b) & 0xFFFFFFFF
    return WorkloadDefinition(
        name="fibonacci",
        description=f"first {n} Fibonacci numbers",
        program=program,
        input_writes={},
        outputs={"fib": (program.symbols["out"], n)},
        expected={"fib": expected},
    )


_CRC_SRC = """
; bitwise CRC-32 (polynomial 0xEDB88320, reflected) over n data words.
start:
    ldi  sp, 0xF000
    li   r1, 0xFFFFFFFF    ; crc
    ldi  r2, 0             ; word index
    ldi  r10, n
    ld   r3, [r10+0]
wloop:
    cmp  r2, r3
    bge  finish
    ldi  r4, data
    add  r4, r4, r2
    ld   r5, [r4+0]        ; word
    xor  r1, r1, r5
    ldi  r6, 32            ; bit counter
bloop:
    cmpi r6, 0
    ble  word_done
    andi r7, r1, 1
    shri r1, r1, 1
    cmpi r7, 0
    beq  no_poly
    li   r8, 0xEDB88320
    xor  r1, r1, r8
no_poly:
    subi r6, r6, 1
    jmp  bloop
word_done:
    addi r2, r2, 1
    jmp  wloop
finish:
    not  r1, r1
    ldi  r9, crc_out
    st   r1, [r9+0]
    halt
n:
    .word {N}
data:
    .space {N}
crc_out:
    .word 0
"""


def _crc32_words(words: List[int]) -> int:
    crc = 0xFFFFFFFF
    for word in words:
        crc ^= word
        for _ in range(32):
            if crc & 1:
                crc = (crc >> 1) ^ 0xEDB88320
            else:
                crc >>= 1
    return (~crc) & 0xFFFFFFFF


@register_workload("crc32")
def crc32(n: int = 8, seed: int = 5) -> WorkloadDefinition:
    """Bitwise CRC-32 over ``n`` pseudo-random words."""
    program = build(_CRC_SRC.replace("{N}", str(n)))
    values = make_input_values(n, seed, lo=0, hi=0xFFFF)
    base = program.symbols["data"]
    inputs = {base + i: v for i, v in enumerate(values)}
    return WorkloadDefinition(
        name="crc32",
        description=f"CRC-32 of {n} words (seed {seed})",
        program=program,
        input_writes=inputs,
        outputs={"crc": (program.symbols["crc_out"], 1)},
        expected={"crc": [_crc32_words(values)]},
    )


_VECSUM_SRC = """
; sum of n words -> total.
start:
    ldi  sp, 0xF000
    ldi  r1, vec
    ldi  r10, n
    ld   r2, [r10+0]
    ldi  r3, 0
vloop:
    cmpi r2, 0
    ble  finish
    ld   r4, [r1+0]
    add  r3, r3, r4
    addi r1, r1, 1
    subi r2, r2, 1
    jmp  vloop
finish:
    ldi  r5, total
    st   r3, [r5+0]
    halt
n:
    .word {N}
vec:
    .space {N}
total:
    .word 0
"""


@register_workload("vecsum")
def vecsum(n: int = 12, seed: int = 2) -> WorkloadDefinition:
    """Vector sum — the minimal smoke-campaign workload."""
    program = build(_VECSUM_SRC.replace("{N}", str(n)))
    values = make_input_values(n, seed)
    base = program.symbols["vec"]
    inputs = {base + i: v for i, v in enumerate(values)}
    return WorkloadDefinition(
        name="vecsum",
        description=f"sum of {n} words (seed {seed})",
        program=program,
        input_writes=inputs,
        outputs={"total": (program.symbols["total"], 1)},
        expected={"total": [sum(values) & 0xFFFFFFFF]},
    )
