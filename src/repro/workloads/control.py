"""Closed-loop control workload (the paper's environment-simulator use case).

The workload is a fixed-point (Q8) PID controller running as an infinite
loop; at the end of every iteration it exchanges data with a user-provided
environment simulator through memory windows (paper Section 3.2): the
simulator writes the setpoint and the measured plant output into the INPUT
window, the controller writes its actuation value into the OUTPUT window
and executes SYNC.

Two variants are generated from the same template, reproducing the
companion study the paper cites ([12], "Reducing Critical Failures for
Control Algorithms Using Executable Assertions and Best Effort Recovery"):

* ``assertions=False`` — the plain controller,
* ``assertions=True``  — the controller guarded by executable assertions
  on the measured output and the computed actuation, with best-effort
  recovery (reuse the last good actuation, reset the integrator state,
  count the recovery).
"""

from __future__ import annotations

from repro.thor.memory import ENV_INPUT_BASE, ENV_OUTPUT_BASE
from repro.workloads.library import WorkloadDefinition, build, register_workload

_HEADER = f"""
.equ ENV_IN  {ENV_INPUT_BASE:#x}
.equ ENV_OUT {ENV_OUTPUT_BASE:#x}
start:
    ldi  sp, 0xF000
    ldi  r0, 0
    ldi  r9, state
    st   r0, [r9+0]        ; integ
    st   r0, [r9+1]        ; prev_err
    st   r0, [r9+2]        ; prev_u
    st   r0, [r9+3]        ; rec_count
loop:
    ldi  r1, ENV_IN
    ld   r2, [r1+0]        ; setpoint (Q8, signed)
    ld   r3, [r1+1]        ; measured output y (Q8, signed)
"""

_ASSERT_Y = """
    ; executable assertion: y must be physically plausible (|y| <= YMAX)
    li   r5, {YMAX}
    cmp  r3, r5
    bgt  recover
    li   r5, {NEG_YMAX}
    cmp  r3, r5
    blt  recover
"""

_PID_BODY = """
    sub  r4, r2, r3        ; e = ref - y
    ldi  r9, state
    ld   r5, [r9+0]        ; integ
    add  r5, r5, r4
    li   r6, {IMAX}        ; anti-windup clamp
    cmp  r5, r6
    ble  aw_hi_ok
    mov  r5, r6
aw_hi_ok:
    li   r6, {NEG_IMAX}
    cmp  r5, r6
    bge  aw_lo_ok
    mov  r5, r6
aw_lo_ok:
    st   r5, [r9+0]
    ld   r6, [r9+1]        ; prev_err
    sub  r7, r4, r6        ; d = e - prev_err
    st   r4, [r9+1]
    ; u = (Kp*e + Ki*integ + Kd*d) >> 8   (Q8 arithmetic)
    li   r8, {KP}
    mul  r8, r8, r4
    li   r10, {KI}
    mul  r10, r10, r5
    add  r8, r8, r10
    li   r10, {KD}
    mul  r10, r10, r7
    add  r8, r8, r10
    ldi  r10, 8
    sra  r8, r8, r10
"""

_ASSERT_U = """
    ; executable assertion: actuation within actuator range (|u| <= UMAX)
    li   r10, {UMAX}
    cmp  r8, r10
    bgt  recover
    li   r10, {NEG_UMAX}
    cmp  r8, r10
    blt  recover
"""

_EMIT = """
    st   r8, [r9+2]        ; remember last good u
emit:
    ldi  r1, ENV_OUT
    st   r8, [r1+0]
    sync
    jmp  loop
"""

_RECOVER = """
recover:
    ; best-effort recovery: hold the last good actuation and
    ; re-initialise the controller state, then continue.
    ldi  r9, state
    ld   r8, [r9+2]        ; prev_u
    ldi  r0, 0
    st   r0, [r9+0]
    st   r0, [r9+1]
    ld   r10, [r9+3]
    addi r10, r10, 1
    st   r10, [r9+3]
    jmp  emit
"""

_FOOTER = """
state:
    .space 4
"""


def _q8(value: float) -> int:
    return int(round(value * 256.0))


@register_workload("pid-control")
def pid_control(
    kp: float = 1.0,
    ki: float = 0.1,
    kd: float = 0.5,
    umax: float = 64.0,
    ymax: float = 96.0,
    imax: float = 512.0,
    assertions: bool = True,
) -> WorkloadDefinition:
    """PID control loop with optional executable assertions + recovery.

    Gains and limits are floats in engineering units, converted to Q8.
    """
    substitutions = {
        "{KP}": str(_q8(kp)),
        "{KI}": str(_q8(ki)),
        "{KD}": str(_q8(kd)),
        "{UMAX}": str(_q8(umax)),
        "{NEG_UMAX}": str(-_q8(umax)),
        "{YMAX}": str(_q8(ymax)),
        "{NEG_YMAX}": str(-_q8(ymax)),
        "{IMAX}": str(_q8(imax)),
        "{NEG_IMAX}": str(-_q8(imax)),
    }
    parts = [_HEADER]
    if assertions:
        parts.append(_ASSERT_Y)
    parts.append(_PID_BODY)
    if assertions:
        parts.append(_ASSERT_U)
    parts.append(_EMIT)
    if assertions:
        parts.append(_RECOVER)
    parts.append(_FOOTER)
    source = "".join(parts)
    for token, value in substitutions.items():
        source = source.replace(token, value)
    program = build(source)
    state = program.symbols["state"]
    variant = "protected" if assertions else "unprotected"
    return WorkloadDefinition(
        name="pid-control",
        description=f"Q8 PID control loop ({variant})",
        program=program,
        input_writes={},
        outputs={
            "integ": (state, 1),
            "prev_u": (state + 2, 1),
            "rec_count": (state + 3, 1),
        },
        expected={},  # closed-loop outputs depend on the plant model
        is_loop=True,
        default_max_iterations=200,
        uses_environment=True,
    )
