"""Sorting workloads: bubblesort and an iterative quicksort.

Sorting is the classic fault-injection workload — dense data movement
through registers, memory and both caches, with outputs (the sorted array
plus a checksum) that make escaped errors observable.
"""

from __future__ import annotations

from repro.workloads.library import (
    WorkloadDefinition,
    build,
    make_input_values,
    register_workload,
)

_BUBBLE_SRC = """
; bubblesort: sorts arr[0..n-1] ascending, then writes sum(arr) to checksum.
start:
    ldi  sp, 0xF000
    ldi  r10, n
    ld   r1, [r10+0]       ; r1 = remaining length
outer:
    cmpi r1, 1
    ble  done_sort
    ldi  r2, 0             ; i = 0
inner:
    ldi  r3, arr
    add  r3, r3, r2        ; r3 = &arr[i]
    ld   r4, [r3+0]
    ld   r5, [r3+1]
    cmp  r4, r5
    ble  noswap
    st   r5, [r3+0]
    st   r4, [r3+1]
noswap:
    addi r2, r2, 1
    mov  r6, r1
    subi r6, r6, 1
    cmp  r2, r6
    blt  inner
    subi r1, r1, 1
    jmp  outer
done_sort:
    ldi  r2, 0             ; index
    ldi  r3, 0             ; sum
    ld   r1, [r10+0]
csum:
    cmp  r2, r1
    bge  finish
    ldi  r7, arr
    add  r6, r7, r2
    ld   r4, [r6+0]
    add  r3, r3, r4
    addi r2, r2, 1
    jmp  csum
finish:
    ldi  r8, checksum
    st   r3, [r8+0]
    halt
n:
    .word {N}
arr:
    .space {N}
checksum:
    .word 0
"""


@register_workload("bubblesort")
def bubblesort(n: int = 16, seed: int = 7) -> WorkloadDefinition:
    """Bubblesort of ``n`` pseudo-random words."""
    program = build(_BUBBLE_SRC.replace("{N}", str(n)))
    values = make_input_values(n, seed)
    arr = program.symbols["arr"]
    inputs = {arr + i: v for i, v in enumerate(values)}
    return WorkloadDefinition(
        name="bubblesort",
        description=f"bubblesort of {n} words (seed {seed})",
        program=program,
        input_writes=inputs,
        outputs={
            "sorted": (arr, n),
            "checksum": (program.symbols["checksum"], 1),
        },
        expected={
            "sorted": sorted(values),
            "checksum": [sum(values) & 0xFFFFFFFF],
        },
    )


_QUICK_SRC = """
; iterative quicksort using an explicit stack of (lo, hi) ranges.
; Lomuto partition; sorts arr[0..n-1] ascending; checksum = sum(arr).
start:
    ldi  sp, 0xF000
    ldi  r10, n
    ld   r1, [r10+0]
    cmpi r1, 2
    blt  done_sort
    ldi  r2, 0             ; lo = 0
    mov  r3, r1
    subi r3, r3, 1         ; hi = n - 1
    push r2
    push r3
qloop:
    ldi  r4, 0xF000        ; stack empty when sp is back at the top
    cmp  sp, r4
    bge  done_sort
    pop  r3                ; hi
    pop  r2                ; lo
    cmp  r2, r3
    bge  qloop             ; empty / single-element range
    ; partition: pivot = arr[hi]
    ldi  r5, arr
    add  r6, r5, r3
    ld   r7, [r6+0]        ; pivot
    mov  r8, r2            ; store index i = lo
    mov  r9, r2            ; scan index j = lo
part:
    cmp  r9, r3
    bge  part_done
    add  r6, r5, r9
    ld   r11, [r6+0]       ; arr[j]
    cmp  r11, r7
    bge  part_next
    ; swap arr[i], arr[j]
    add  r12, r5, r8
    ld   r13, [r12+0]
    st   r11, [r12+0]
    st   r13, [r6+0]
    addi r8, r8, 1
part_next:
    addi r9, r9, 1
    jmp  part
part_done:
    ; swap arr[i], arr[hi]  (pivot into place)
    add  r12, r5, r8
    ld   r13, [r12+0]
    add  r6, r5, r3
    ld   r11, [r6+0]
    st   r11, [r12+0]
    st   r13, [r6+0]
    ; push (lo, i-1) and (i+1, hi)
    mov  r9, r8
    subi r9, r9, 1
    cmp  r2, r9
    bge  skip_left
    push r2
    push r9
skip_left:
    mov  r9, r8
    addi r9, r9, 1
    cmp  r9, r3
    bge  skip_right
    push r9
    push r3
skip_right:
    jmp  qloop
done_sort:
    call do_csum           ; checksum as a subroutine (exercises CALL/RET
    halt                   ; and gives the "call" fault trigger an event)
do_csum:
    ldi  r2, 0
    ldi  r3, 0
    ld   r1, [r10+0]
csum:
    cmp  r2, r1
    bge  csum_done
    ldi  r7, arr
    add  r6, r7, r2
    ld   r4, [r6+0]
    add  r3, r3, r4
    addi r2, r2, 1
    jmp  csum
csum_done:
    ldi  r8, checksum
    st   r3, [r8+0]
    ret
n:
    .word {N}
arr:
    .space {N}
checksum:
    .word 0
"""


@register_workload("quicksort")
def quicksort(n: int = 16, seed: int = 11) -> WorkloadDefinition:
    """Iterative quicksort of ``n`` pseudo-random words (exercises the
    hardware stack via PUSH/POP)."""
    program = build(_QUICK_SRC.replace("{N}", str(n)))
    values = make_input_values(n, seed)
    arr = program.symbols["arr"]
    inputs = {arr + i: v for i, v in enumerate(values)}
    return WorkloadDefinition(
        name="quicksort",
        description=f"iterative quicksort of {n} words (seed {seed})",
        program=program,
        input_writes=inputs,
        outputs={
            "sorted": (arr, n),
            "checksum": (program.symbols["checksum"], 1),
        },
        expected={
            "sorted": sorted(values),
            "checksum": [sum(values) & 0xFFFFFFFF],
        },
    )
