"""Cooperative multitasking workload (for the task-switch fault trigger).

Section 4 of the paper lists "when task switches occur" among the planned
fault triggers. This workload provides the substrate: a tiny cooperative
executive that alternates two tasks, routing every context change through
a ``task_switch`` routine. The ``task-switch`` trigger kind resolves to
executions of that routine's entry address.
"""

from __future__ import annotations

from repro.workloads.library import WorkloadDefinition, build, register_workload

_MULTITASK_SRC = """
; round-robin executive: QUANTA quanta, alternating task_a / task_b,
; every dispatch goes through task_switch (the trigger anchor).
start:
    ldi  sp, 0xF000
    ldi  r9, 0             ; quantum counter
sched:
    cmpi r9, {QUANTA}
    bge  done
    call task_switch
    andi r1, r9, 1
    cmpi r1, 0
    bne  dispatch_b
    call task_a
    jmp  next
dispatch_b:
    call task_b
next:
    addi r9, r9, 1
    jmp  sched
done:
    halt

task_switch:
    ; context bookkeeping: count dispatches (a real executive would swap
    ; register frames here — the trigger only cares about the address).
    ldi  r2, switches
    ld   r3, [r2+0]
    addi r3, r3, 1
    st   r3, [r2+0]
    ret

task_a:
    ; counter_a += quantum index + 1
    ldi  r2, counter_a
    ld   r3, [r2+0]
    add  r3, r3, r9
    addi r3, r3, 1
    st   r3, [r2+0]
    ret

task_b:
    ; counter_b = counter_b * 3 + 1  (mod 2^32)
    ldi  r2, counter_b
    ld   r3, [r2+0]
    muli r3, r3, 3
    addi r3, r3, 1
    st   r3, [r2+0]
    ret

switches:
    .word 0
counter_a:
    .word 0
counter_b:
    .word 0
"""


@register_workload("multitask")
def multitask(quanta: int = 12) -> WorkloadDefinition:
    """Two cooperative tasks under a round-robin executive."""
    program = build(_MULTITASK_SRC.replace("{QUANTA}", str(quanta)))
    counter_a = 0
    counter_b = 0
    for quantum in range(quanta):
        if quantum % 2 == 0:
            counter_a = (counter_a + quantum + 1) & 0xFFFFFFFF
        else:
            counter_b = (counter_b * 3 + 1) & 0xFFFFFFFF
    return WorkloadDefinition(
        name="multitask",
        description=f"two cooperative tasks, {quanta} quanta",
        program=program,
        input_writes={},
        outputs={
            "switches": (program.symbols["switches"], 1),
            "counter_a": (program.symbols["counter_a"], 1),
            "counter_b": (program.symbols["counter_b"], 1),
        },
        expected={
            "switches": [quanta],
            "counter_a": [counter_a],
            "counter_b": [counter_b],
        },
    )
