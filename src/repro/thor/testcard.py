"""The THOR test card: the board the chip sits on.

In the paper the target system is a test card hosting the Thor RD,
reachable from the host over a test-port connection. Everything the
fault-injection tool does to the target goes through the card:

* download of the workload image and input data (``load_program``,
  ``write_memory``),
* run control with breakpoints and debug events (``run``, ``set_breakpoints``),
* scan-chain access while the CPU is stopped (``read_chain``, ``write_chain``),
* the environment-simulator data exchange at loop-iteration (SYNC)
  boundaries (``on_sync``),
* experiment termination by debug event: "a time-out value has been
  reached, an error has been detected or the execution of the workload
  ends, whichever comes first" (paper Section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.thor.assembler import Program
from repro.thor.cpu import Cpu, CpuConfig
from repro.thor.scanchain import ScanChain, build_scan_chains
from repro.thor.traps import Trap, TrapEvent
from repro.util.errors import TargetError


class DebugEventKind(enum.Enum):
    BREAKPOINT = "breakpoint"
    HALT = "halt"
    TRAP = "trap"
    TIMEOUT = "timeout"
    MAX_ITERATIONS = "max_iterations"


@dataclass(frozen=True)
class DebugEvent:
    """Why the target stopped (or paused) this time."""

    kind: DebugEventKind
    pc: int
    cycle: int
    trap: Optional[TrapEvent] = None
    iteration: int = 0
    reason: str = ""

    @property
    def is_termination(self) -> bool:
        return self.kind is not DebugEventKind.BREAKPOINT

    def describe(self) -> str:
        text = f"{self.kind.value} at pc={self.pc:#06x} cycle={self.cycle}"
        if self.trap is not None:
            text += f": {self.trap.describe()}"
        if self.reason:
            text += f" [{self.reason}]"
        return text


# Hook signatures.
SyncHook = Callable[["TestCard", int], None]
StepHook = Callable[["TestCard"], None]
TrapHook = Callable[["TestCard", TrapEvent], bool]


class TestCard:
    """One target system instance: chip + board services."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, config: Optional[CpuConfig] = None, name: str = "thor-rd"):
        self.name = name
        self.cpu = Cpu(config)
        self.chains: Dict[str, ScanChain] = build_scan_chains(self.cpu)
        self.program: Optional[Program] = None
        self.on_sync: Optional[SyncHook] = None
        self.on_step: Optional[StepHook] = None
        self.trap_hook: Optional[TrapHook] = None
        self.total_scan_cycles = 0
        self._breakpoints: Set[int] = set()
        self._skip_breakpoint_once = False

    # -- initialisation (the initTestCard building block) ---------------------

    def init(self) -> None:
        """Power-cycle the card: clears CPU state and memory, keeps the
        configured scan-chain structure and hooks."""
        self.cpu.memory.reset()
        self.cpu.reset(entry=0)
        self.program = None
        self._breakpoints.clear()
        self._skip_breakpoint_once = False

    # -- download port (loadWorkload / writeMemory / readMemory) --------------

    def load_program(self, program: Program) -> None:
        """Download an assembled workload and point the PC at its entry."""
        self.program = program
        self.cpu.memory.load_image(program.words)
        self.cpu.reset(entry=program.entry)

    def write_memory(self, address: int, value: int) -> None:
        self.cpu.memory.poke(address, value)

    def read_memory(self, address: int) -> int:
        return self.cpu.memory.peek(address)

    def write_memory_block(self, base: int, values: List[int]) -> None:
        for i, value in enumerate(values):
            self.cpu.memory.poke(base + i, value)

    def read_memory_block(self, base: int, count: int) -> List[int]:
        return self.cpu.memory.dump(base, base + count)

    # -- scan access (readScanChain / writeScanChain) ---------------------------

    def chain(self, name: str) -> ScanChain:
        chain = self.chains.get(name)
        if chain is None:
            raise TargetError(f"no scan chain {name!r} on card {self.name!r}")
        return chain

    def read_chain(self, name: str) -> List[int]:
        chain = self.chain(name)
        self.total_scan_cycles += chain.shift_cycles
        return chain.read()

    def write_chain(self, name: str, bits: List[int]) -> None:
        chain = self.chain(name)
        self.total_scan_cycles += chain.shift_cycles
        chain.write(bits)

    # -- breakpoints ----------------------------------------------------------

    def set_breakpoints(self, addresses: List[int]) -> None:
        self._breakpoints = set(addresses)
        self._skip_breakpoint_once = False

    def clear_breakpoints(self) -> None:
        self._breakpoints.clear()

    # -- run control ------------------------------------------------------------

    def run(
        self,
        timeout_cycles: int,
        max_iterations: Optional[int] = None,
        stop_cycle: Optional[int] = None,
    ) -> DebugEvent:
        """Run until a debug event.

        ``timeout_cycles`` is the experiment's cycle budget (the paper's
        time-out termination condition). ``stop_cycle`` makes the card stop
        at the first instruction boundary at or past that cycle — this is
        how the SCIFI algorithm realises "inject at time t".
        ``max_iterations`` bounds SYNC loop iterations for workloads that
        run as an infinite loop.
        """
        cpu = self.cpu
        if cpu.halted:
            raise TargetError("target is halted; re-initialise the card first")
        # Loop-invariant hoists: breakpoints and hooks are only
        # reconfigured while the card is stopped, so the per-instruction
        # body should not pay an attribute lookup for each of them.
        step = cpu.step
        breakpoints = self._breakpoints
        on_step = self.on_step
        while True:
            if stop_cycle is not None and cpu.cycles >= stop_cycle:
                return DebugEvent(
                    kind=DebugEventKind.BREAKPOINT,
                    pc=cpu.pc,
                    cycle=cpu.cycles,
                    reason=f"cycle>={stop_cycle}",
                )
            if cpu.pc in breakpoints and not self._skip_breakpoint_once:
                self._skip_breakpoint_once = True
                return DebugEvent(
                    kind=DebugEventKind.BREAKPOINT,
                    pc=cpu.pc,
                    cycle=cpu.cycles,
                    reason="address",
                )
            self._skip_breakpoint_once = False
            if cpu.cycles >= timeout_cycles:
                return DebugEvent(
                    kind=DebugEventKind.TIMEOUT,
                    pc=cpu.pc,
                    cycle=cpu.cycles,
                    reason=f"budget {timeout_cycles}",
                )

            event = step()
            # Step hooks (tracing, detail-mode logging, trap re-planting)
            # see only completed instructions, not halting/trapping steps.
            if on_step is not None and (
                event is None or event.kind == "sync"
            ):
                on_step(self)
            if event is None:
                continue
            if event.kind == "halt":
                return DebugEvent(
                    kind=DebugEventKind.HALT, pc=cpu.pc, cycle=cpu.cycles
                )
            if event.kind == "sync":
                if self.on_sync is not None:
                    self.on_sync(self, event.iteration)
                if max_iterations is not None and event.iteration >= max_iterations:
                    return DebugEvent(
                        kind=DebugEventKind.MAX_ITERATIONS,
                        pc=cpu.pc,
                        cycle=cpu.cycles,
                        iteration=event.iteration,
                    )
                continue
            if event.kind == "trap":
                trap = event.trap
                assert trap is not None
                if (
                    trap.trap is Trap.SOFTWARE
                    and self.trap_hook is not None
                    and self.trap_hook(self, trap)
                ):
                    # The hook serviced the trap (runtime-SWIFI injection
                    # point); resume at the same PC, which the hook has
                    # typically rewritten.
                    cpu.clear_trap()
                    continue
                return DebugEvent(
                    kind=DebugEventKind.TRAP,
                    pc=cpu.pc,
                    cycle=cpu.cycles,
                    trap=trap,
                )
