"""Disassembler for THOR-lite instruction words.

Used by the propagation analyser and the UI to render execution traces and
fault-injected instruction words in human-readable form.
"""

from __future__ import annotations

from repro.thor import isa
from repro.thor.isa import Instruction, Opcode, try_decode

_MEM_OPS = {Opcode.LD, Opcode.ST}
_NO_OPERAND = {Opcode.NOP, Opcode.HALT, Opcode.RET, Opcode.SYNC}


def format_instruction(instr: Instruction) -> str:
    op = instr.opcode
    name = op.name.lower()
    if op in _NO_OPERAND:
        return name
    if op in _MEM_OPS:
        sign = "+" if instr.imm >= 0 else "-"
        return f"{name} r{instr.rd}, [r{instr.rs1}{sign}{abs(instr.imm)}]"
    if op in isa.BRANCHES:
        return f"{name} {instr.imm:+d}"
    if op in (Opcode.JMP, Opcode.CALL):
        return f"{name} {instr.imm:#x}"
    if op is Opcode.TRAP:
        return f"{name} {instr.imm}"
    if op is Opcode.JR:
        return f"{name} r{instr.rs1}"
    if op in (Opcode.PUSH, Opcode.POP):
        return f"{name} r{instr.rd}"
    if op is Opcode.CMP:
        return f"{name} r{instr.rs1}, r{instr.rs2}"
    if op is Opcode.CMPI:
        return f"{name} r{instr.rs1}, {instr.imm}"
    if op in (Opcode.NOT, Opcode.MOV):
        return f"{name} r{instr.rd}, r{instr.rs1}"
    if op in (Opcode.LDI, Opcode.LUI):
        return f"{name} r{instr.rd}, {instr.imm}"
    if op.value >= Opcode.ADDI.value and instr.is_i_type():
        return f"{name} r{instr.rd}, r{instr.rs1}, {instr.imm}"
    return f"{name} r{instr.rd}, r{instr.rs1}, r{instr.rs2}"


def disassemble_word(word: int) -> str:
    """Render one instruction word; illegal opcodes render as ``.illegal``."""
    instr = try_decode(word)
    if instr is None:
        return f".illegal {word:#010x}"
    return format_instruction(instr)
