"""Disassembler for THOR-lite instruction words.

Used by the propagation analyser and the UI to render execution traces and
fault-injected instruction words in human-readable form. The operand
format of every opcode comes from the shared operand-semantics table
(:data:`repro.thor.isa.SEMANTICS`), so a new opcode only needs a table
entry to disassemble correctly.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.thor import isa
from repro.thor.isa import Instruction, try_decode

_FORMATTERS: Dict[str, Callable[[str, Instruction], str]] = {
    "none": lambda name, i: name,
    "r3": lambda name, i: f"{name} r{i.rd}, r{i.rs1}, r{i.rs2}",
    "r2": lambda name, i: f"{name} r{i.rd}, r{i.rs1}",
    "i3": lambda name, i: f"{name} r{i.rd}, r{i.rs1}, {i.imm}",
    "mem": lambda name, i: (
        f"{name} r{i.rd}, [r{i.rs1}{'+' if i.imm >= 0 else '-'}{abs(i.imm)}]"
    ),
    "branch": lambda name, i: f"{name} {i.imm:+d}",
    "jumpabs": lambda name, i: f"{name} {i.imm:#x}",
    "trap": lambda name, i: f"{name} {i.imm}",
    "jr": lambda name, i: f"{name} r{i.rs1}",
    "stack": lambda name, i: f"{name} r{i.rd}",
    "cmp": lambda name, i: f"{name} r{i.rs1}, r{i.rs2}",
    "cmpi": lambda name, i: f"{name} r{i.rs1}, {i.imm}",
    "imm": lambda name, i: f"{name} r{i.rd}, {i.imm}",
}


def format_instruction(instr: Instruction) -> str:
    sem = isa.semantics(instr.opcode)
    name = instr.opcode.name.lower()
    return _FORMATTERS[sem.fmt](name, instr)


def disassemble_word(word: int) -> str:
    """Render one instruction word; illegal opcodes render as ``.illegal``."""
    instr = try_decode(word)
    if instr is None:
        return f".illegal {word:#010x}"
    return format_instruction(instr)
