"""Architectural read/write effects of each instruction.

Used by the pre-injection analysis (paper Section 4): to decide whether a
register holds *live* data at some point in time we need to know, for every
instruction of the reference trace, which registers it reads and writes.
Flag (PSR) producers and consumers are tracked as well, because the PSR is
itself a scan-chain fault-injection location.

The per-opcode behaviour is derived from the shared operand-semantics
table (:data:`repro.thor.isa.SEMANTICS`); this module only resolves the
symbolic register *roles* of that table ("rd", "rs1", "sp", ...) to the
concrete register indices of one decoded instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet

from repro.thor import isa
from repro.thor.isa import Instruction

_ROLE_RESOLVERS: Dict[str, Callable[[Instruction], int]] = {
    isa.ROLE_RD: lambda instr: instr.rd,
    isa.ROLE_RS1: lambda instr: instr.rs1,
    isa.ROLE_RS2: lambda instr: instr.rs2,
    isa.ROLE_SP: lambda instr: isa.REG_SP,
    isa.ROLE_LR: lambda instr: isa.REG_LR,
}


def resolve_roles(instr: Instruction, roles: tuple) -> FrozenSet[int]:
    """Map symbolic register roles to this instruction's register indices."""
    return frozenset(_ROLE_RESOLVERS[role](instr) for role in roles)


@dataclass(frozen=True)
class Effects:
    """Register/flag dataflow of one instruction."""

    reg_reads: FrozenSet[int]
    reg_writes: FrozenSet[int]
    reads_flags: bool
    writes_flags: bool


def register_effects(instr: Instruction) -> Effects:
    """Compute which registers and flags ``instr`` reads and writes."""
    sem = isa.semantics(instr.opcode)
    return Effects(
        reg_reads=resolve_roles(instr, sem.reads),
        reg_writes=resolve_roles(instr, sem.writes),
        reads_flags=sem.reads_flags,
        writes_flags=sem.writes_flags,
    )
