"""Architectural read/write effects of each instruction.

Used by the pre-injection analysis (paper Section 4): to decide whether a
register holds *live* data at some point in time we need to know, for every
instruction of the reference trace, which registers it reads and writes.
Flag (PSR) producers and consumers are tracked as well, because the PSR is
itself a scan-chain fault-injection location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.thor import isa
from repro.thor.isa import Instruction, Opcode

_R3_ALU = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SRA,
    }
)
_I3_ALU = frozenset(
    {
        Opcode.ADDI,
        Opcode.SUBI,
        Opcode.MULI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
    }
)
_FLAG_WRITERS = (
    _R3_ALU
    | _I3_ALU
    | frozenset({Opcode.NOT, Opcode.MOV, Opcode.CMP, Opcode.CMPI})
)


@dataclass(frozen=True)
class Effects:
    """Register/flag dataflow of one instruction."""

    reg_reads: FrozenSet[int]
    reg_writes: FrozenSet[int]
    reads_flags: bool
    writes_flags: bool


def register_effects(instr: Instruction) -> Effects:
    """Compute which registers and flags ``instr`` reads and writes."""
    op = instr.opcode
    reads: FrozenSet[int] = frozenset()
    writes: FrozenSet[int] = frozenset()

    if op in _R3_ALU:
        reads = frozenset({instr.rs1, instr.rs2})
        writes = frozenset({instr.rd})
    elif op in _I3_ALU:
        reads = frozenset({instr.rs1})
        writes = frozenset({instr.rd})
    elif op in (Opcode.NOT, Opcode.MOV):
        reads = frozenset({instr.rs1})
        writes = frozenset({instr.rd})
    elif op in (Opcode.LDI, Opcode.LUI):
        writes = frozenset({instr.rd})
    elif op is Opcode.CMP:
        reads = frozenset({instr.rs1, instr.rs2})
    elif op is Opcode.CMPI:
        reads = frozenset({instr.rs1})
    elif op is Opcode.LD:
        reads = frozenset({instr.rs1})
        writes = frozenset({instr.rd})
    elif op is Opcode.ST:
        reads = frozenset({instr.rs1, instr.rd})
    elif op is Opcode.PUSH:
        reads = frozenset({instr.rd, isa.REG_SP})
        writes = frozenset({isa.REG_SP})
    elif op is Opcode.POP:
        reads = frozenset({isa.REG_SP})
        writes = frozenset({instr.rd, isa.REG_SP})
    elif op is Opcode.JR:
        reads = frozenset({instr.rs1})
    elif op is Opcode.CALL:
        writes = frozenset({isa.REG_LR})
    elif op is Opcode.RET:
        reads = frozenset({isa.REG_LR})

    return Effects(
        reg_reads=reads,
        reg_writes=writes,
        reads_flags=op in isa.BRANCHES,
        writes_flags=op in _FLAG_WRITERS,
    )
