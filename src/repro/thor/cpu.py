"""THOR-lite CPU core: functional execution with cycle accounting.

The core executes one instruction per :meth:`Cpu.step`, charging base
cycle costs plus cache-miss penalties, and raising traps through the
error-detection mechanisms in :mod:`repro.thor.traps`. A trap halts the
CPU (the experiment terminates with a *detected error*, per the paper's
termination conditions); ``SYNC`` emits an iteration-boundary event used
by the environment-simulator exchange; ``HALT`` terminates the workload
normally.

Two step implementations share the architectural semantics:

* the **fast path** (:meth:`Cpu._step_fast`, default) fuses
  fetch/decode/execute through a memoized ``word -> (instruction,
  handler, cycle cost)`` table whose per-opcode handlers are validated
  against :data:`repro.thor.isa.SEMANTICS`;
* the **reference path** (:meth:`Cpu._step_reference`) keeps the
  original straight-line decode + if-chain execute. It is not dead
  code: the core-equivalence property suite and the E18 benchmark run
  campaigns under both dispatchers and require byte-identical rows.

Selection is per-instance at construction from the
:attr:`Cpu.fast_dispatch` class attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.thor import isa
from repro.thor.cache import Cache, CacheParityError
from repro.thor.isa import Instruction, IllegalOpcode, Opcode
from repro.thor.memory import IllegalAddress, Memory, MemoryBus
from repro.thor.pipeline import PipelineLatches
from repro.thor.registers import Psr, RegisterFile
from repro.thor.traps import Trap, TrapEvent
from repro.util.bits import to_signed, to_unsigned


@dataclass(frozen=True)
class CpuConfig:
    """Static configuration of one THOR-lite chip."""

    memory_size: int = 65536
    icache_lines: int = 16
    dcache_lines: int = 16
    words_per_line: int = 4
    miss_penalty: int = 8
    parity_checking: bool = True
    overflow_trap: bool = False
    # Memory-mapped I/O window (the environment-simulator exchange area):
    # loads/stores at or above this address bypass the D-cache, as real
    # MMIO regions must — the environment simulator writes this window
    # from outside the cache hierarchy.
    uncached_base: int = 0xFF00
    # CPU-internal watchdog: traps when a single run exceeds this many
    # cycles. None disables it (the test card still enforces its own
    # experiment timeout).
    watchdog_cycles: Optional[int] = None

    @property
    def address_bits(self) -> int:
        return max(1, (self.memory_size - 1).bit_length())


@dataclass
class LastExec:
    """What the last executed instruction did — consumed by fault triggers
    (branch / call / data-access triggers of the paper's Section 4)."""

    pc: int = 0
    opcode: Optional[Opcode] = None
    branch_taken: bool = False
    mem_address: Optional[int] = None
    mem_value: Optional[int] = None
    mem_is_write: bool = False
    reg_reads: Tuple[int, ...] = ()
    reg_writes: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CpuEvent:
    """Event surfaced by one step: "halt", "trap" or "sync"."""

    kind: str
    trap: Optional[TrapEvent] = None
    iteration: int = 0


class CpuHalted(Exception):
    """step() was called on a halted CPU."""


@dataclass
class _Next:
    """Control-flow decision of the executing instruction."""

    pc: int
    taken: bool = False


class Cpu:
    """One THOR-lite chip: registers, PSR, PC, pipeline latches, caches,
    memory, cycle/instruction counters."""

    #: Class-level dispatcher selection, read once at construction.
    #: Tests flip this to compare the handler-table fast path against
    #: the reference decode/if-chain path on whole campaigns.
    fast_dispatch: bool = True

    def __init__(self, config: Optional[CpuConfig] = None):
        self.config = config or CpuConfig()
        self.memory = Memory(self.config.memory_size)
        self.bus = MemoryBus(self.memory)
        self.regs = RegisterFile()
        self.psr = Psr()
        self.pipeline = PipelineLatches()
        self.icache = Cache(
            "icache",
            n_lines=self.config.icache_lines,
            words_per_line=self.config.words_per_line,
            miss_penalty=self.config.miss_penalty,
            check_parity=self.config.parity_checking,
            address_bits=self.config.address_bits,
        )
        self.dcache = Cache(
            "dcache",
            n_lines=self.config.dcache_lines,
            words_per_line=self.config.words_per_line,
            miss_penalty=self.config.miss_penalty,
            check_parity=self.config.parity_checking,
            address_bits=self.config.address_bits,
        )
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.iterations = 0
        self.halted = False
        self.trap_event: Optional[TrapEvent] = None
        self.last_exec = LastExec()
        # Hot-loop invariants, hoisted out of the per-step attribute
        # chains. ``_regs`` aliases the register file's backing list —
        # sound because RegisterFile mutates it strictly in place.
        self._memory_size = self.config.memory_size
        self._uncached_base = self.config.uncached_base
        self._watchdog = self.config.watchdog_cycles
        self._regs = self.regs._regs
        # Per-instance dispatcher binding (shadows nothing: ``step`` has
        # no class-level def; both implementations stay addressable).
        self.step: Callable[[], Optional[CpuEvent]] = (
            self._step_fast if type(self).fast_dispatch
            else self._step_reference
        )

    # -- lifecycle -----------------------------------------------------------

    def reset(self, entry: int = 0) -> None:
        """Power-on reset: clears all state except main memory contents
        (memory is loaded separately by the test card download port)."""
        overflow = self.config.overflow_trap
        self.regs.reset()
        self.psr.reset()
        self.psr.overflow_enable = overflow
        self.pipeline.reset()
        self.icache.reset()
        self.dcache.reset()
        self.bus.reset_force()
        self.pc = entry
        self.cycles = 0
        self.instret = 0
        self.iterations = 0
        self.halted = False
        self.trap_event = None
        self.last_exec = LastExec()

    def clear_trap(self) -> None:
        """Un-halt after a trap without touching any other state.

        Used by the test card's trap-hook path (runtime SWIFI resumes the
        workload after servicing the software trap it planted)."""
        self.halted = False
        self.trap_event = None

    # -- checkpoint support (golden-run warm starts) ---------------------------

    def snapshot(self) -> dict:
        """Everything but main memory, as plain picklable data.

        Captured at instruction boundaries along the trap-free reference
        run, so ``halted`` is False and no trap is latched; ``last_exec``
        is included because fault triggers consume it."""
        last = self.last_exec
        return {
            "regs": self.regs.snapshot(),
            "psr": self.psr.to_word(),
            "pipeline": self.pipeline.snapshot(),
            "icache": self.icache.snapshot_state(),
            "dcache": self.dcache.snapshot_state(),
            "bus": (
                self.bus.force_mask,
                self.bus.force_value,
                self.bus.force_reads,
            ),
            "pc": self.pc,
            "cycles": self.cycles,
            "instret": self.instret,
            "iterations": self.iterations,
            "last_exec": (
                last.pc,
                None if last.opcode is None else last.opcode.name,
                last.branch_taken,
                last.mem_address,
                last.mem_value,
                last.mem_is_write,
                tuple(last.reg_reads),
                tuple(last.reg_writes),
            ),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (memory is restored separately by
        the test card's page loads). Leaves the CPU running (not halted,
        no trap latched) exactly as it was at the capture boundary."""
        self.regs.restore(state["regs"])
        self.psr.from_word(state["psr"])
        self.pipeline.restore(state["pipeline"])
        self.icache.restore_state(state["icache"])
        self.dcache.restore_state(state["dcache"])
        force_mask, force_value, force_reads = state["bus"]
        self.bus.force_mask = force_mask
        self.bus.force_value = force_value
        self.bus.force_reads = force_reads
        self.pc = state["pc"]
        self.cycles = state["cycles"]
        self.instret = state["instret"]
        self.iterations = state["iterations"]
        self.halted = False
        self.trap_event = None
        (
            pc,
            opcode_name,
            branch_taken,
            mem_address,
            mem_value,
            mem_is_write,
            reg_reads,
            reg_writes,
        ) = state["last_exec"]
        self.last_exec = LastExec(
            pc=pc,
            opcode=None if opcode_name is None else Opcode[opcode_name],
            branch_taken=branch_taken,
            mem_address=mem_address,
            mem_value=mem_value,
            mem_is_write=mem_is_write,
            reg_reads=tuple(reg_reads),
            reg_writes=tuple(reg_writes),
        )

    # -- trap path -------------------------------------------------------------

    def _raise_trap(self, trap: Trap, detail: str = "", code: int = 0) -> CpuEvent:
        event = TrapEvent(
            trap=trap, pc=self.pc, cycle=self.cycles, detail=detail, code=code
        )
        self.trap_event = event
        self.halted = True
        return CpuEvent(kind="trap", trap=event)

    # -- execution ----------------------------------------------------------------

    def _step_fast(self) -> Optional[CpuEvent]:
        """Execute one instruction (fast path). Returns an event or None.

        Semantically identical to :meth:`_step_reference` — including
        trap ordering, partial-state effects of faulting instructions,
        cycle/counter accounting and the ``last_exec`` record — but with
        fetch/decode/execute fused through the memoized exec-entry table
        and all per-step allocations removed.
        """
        if self.halted:
            raise CpuHalted("CPU is halted")

        start_pc = self.pc
        pipeline = self.pipeline

        # Fetch (through the I-cache, unless the scan chain forced the IR).
        if pipeline.ir_forced:
            pipeline.ir_forced = False
            word = pipeline.ir
        else:
            if not 0 <= start_pc < self._memory_size:
                return self._raise_trap(
                    Trap.ILLEGAL_ADDRESS, detail=f"fetch from {start_pc:#x}"
                )
            try:
                word, extra = self.icache.read(start_pc, self.bus)
            except CacheParityError as exc:
                return self._raise_trap(Trap.ICACHE_PARITY, detail=str(exc))
            if extra:
                self.cycles += extra
            pipeline.ir = word  # latch_fetch; ir_forced is already False

        # Decode + dispatch lookup (memoized per instruction word).
        entry = _EXEC_CACHE.get(word)
        if entry is None:
            entry = _exec_entry(word)
            if entry is None:
                return self._raise_trap(
                    Trap.ILLEGAL_OPCODE, detail=f"word {word:#010x}"
                )
        instr, handler, cost = entry

        # Execute. The in-place reset mirrors the reference path's fresh
        # LastExec() and must happen only once decode has succeeded.
        self.cycles += cost
        last = self.last_exec
        last.pc = 0
        last.opcode = None
        last.branch_taken = False
        last.mem_address = None
        last.mem_value = None
        last.mem_is_write = False
        last.reg_reads = ()
        last.reg_writes = ()
        try:
            event, next_pc, taken = handler(self, instr)
        except CacheParityError as exc:
            return self._raise_trap(Trap.DCACHE_PARITY, detail=str(exc))
        except IllegalAddress as exc:
            return self._raise_trap(Trap.ILLEGAL_ADDRESS, detail=str(exc))

        if event is not None and event.kind == "trap":
            return event

        if taken:
            self.cycles += 1
        self.pc = next_pc & 0xFFFFFFFF
        self.instret += 1
        last.pc = start_pc
        last.opcode = instr.opcode
        last.branch_taken = taken

        watchdog = self._watchdog
        if watchdog is not None and self.cycles > watchdog:
            return self._raise_trap(
                Trap.WATCHDOG, detail=f"cycle budget {watchdog}"
            )
        return event

    def _step_reference(self) -> Optional[CpuEvent]:
        """Execute one instruction (reference path). Returns an event or
        None. This is the seed implementation, kept as the semantic
        oracle the fast path is property-tested against."""
        if self.halted:
            raise CpuHalted("CPU is halted")

        start_pc = self.pc

        # Fetch (through the I-cache, unless the scan chain forced the IR).
        if self.pipeline.ir_forced:
            word = self.pipeline.consume_forced_ir()
            self.cycles += 0  # forced IR models an already-latched fetch
        else:
            if not 0 <= self.pc < self.config.memory_size:
                return self._raise_trap(
                    Trap.ILLEGAL_ADDRESS, detail=f"fetch from {self.pc:#x}"
                )
            try:
                word, extra = self.icache.read(self.pc, self.bus)
            except CacheParityError as exc:
                return self._raise_trap(Trap.ICACHE_PARITY, detail=str(exc))
            self.cycles += extra
            self.pipeline.latch_fetch(word)

        # Decode.
        try:
            instr = isa.decode(word)
        except IllegalOpcode:
            return self._raise_trap(
                Trap.ILLEGAL_OPCODE, detail=f"word {word:#010x}"
            )

        # Execute.
        self.cycles += isa.CYCLE_COST[instr.opcode]
        try:
            event, nxt = self._execute(instr)
        except CacheParityError as exc:
            return self._raise_trap(Trap.DCACHE_PARITY, detail=str(exc))
        except IllegalAddress as exc:
            return self._raise_trap(Trap.ILLEGAL_ADDRESS, detail=str(exc))

        if event is not None and event.kind == "trap":
            return event

        if nxt.taken:
            self.cycles += 1
        self.pc = nxt.pc & isa.WORD_MASK
        self.instret += 1
        self.last_exec.pc = start_pc
        self.last_exec.opcode = instr.opcode
        self.last_exec.branch_taken = nxt.taken

        if (
            self.config.watchdog_cycles is not None
            and self.cycles > self.config.watchdog_cycles
        ):
            return self._raise_trap(
                Trap.WATCHDOG, detail=f"cycle budget {self.config.watchdog_cycles}"
            )
        return event

    # -- per-opcode semantics -----------------------------------------------------

    def _execute(self, instr: Instruction) -> Tuple[Optional[CpuEvent], _Next]:
        op = instr.opcode
        regs = self.regs
        seq = _Next(pc=self.pc + 1)
        self.last_exec = LastExec()

        if op is Opcode.NOP:
            return None, seq
        if op is Opcode.HALT:
            self.halted = True
            return CpuEvent(kind="halt"), seq
        if op is Opcode.SYNC:
            self.iterations += 1
            return CpuEvent(kind="sync", iteration=self.iterations), seq

        if op in (Opcode.ADD, Opcode.SUB, Opcode.ADDI, Opcode.SUBI):
            a = regs[instr.rs1]
            if op in (Opcode.ADD, Opcode.SUB):
                b = regs[instr.rs2]
            else:
                b = to_unsigned(instr.imm)
            subtract = op in (Opcode.SUB, Opcode.SUBI)
            result, carry, overflow = _add_sub(a, b, subtract)
            regs[instr.rd] = result
            self.psr.set_nz(result)
            self.psr.c = carry
            self.psr.v = overflow
            if overflow and self.psr.overflow_enable:
                return self._raise_trap(Trap.OVERFLOW), seq
            return None, seq

        if op in (Opcode.MUL, Opcode.MULI):
            a = to_signed(regs[instr.rs1])
            b = to_signed(regs[instr.rs2]) if op is Opcode.MUL else instr.imm
            result = to_unsigned(a * b)
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq

        if op in (Opcode.DIV, Opcode.MOD):
            a = to_signed(regs[instr.rs1])
            b = to_signed(regs[instr.rs2])
            if b == 0:
                return self._raise_trap(Trap.DIV_ZERO), seq
            quotient = int(a / b)  # truncate toward zero
            result = quotient if op is Opcode.DIV else a - quotient * b
            regs[instr.rd] = to_unsigned(result)
            self.psr.set_nz(regs[instr.rd])
            return None, seq

        if op in (Opcode.AND, Opcode.OR, Opcode.XOR,
                  Opcode.ANDI, Opcode.ORI, Opcode.XORI):
            a = regs[instr.rs1]
            if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
                b = regs[instr.rs2]
            else:
                b = to_unsigned(instr.imm)
            if op in (Opcode.AND, Opcode.ANDI):
                result = a & b
            elif op in (Opcode.OR, Opcode.ORI):
                result = a | b
            else:
                result = a ^ b
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq

        if op in (Opcode.SHL, Opcode.SHR, Opcode.SRA,
                  Opcode.SHLI, Opcode.SHRI):
            a = regs[instr.rs1]
            if op in (Opcode.SHL, Opcode.SHR, Opcode.SRA):
                amount = regs[instr.rs2] & 31
            else:
                amount = instr.imm & 31
            if op in (Opcode.SHL, Opcode.SHLI):
                result = to_unsigned(a << amount)
            elif op in (Opcode.SHR, Opcode.SHRI):
                result = a >> amount
            else:  # SRA
                result = to_unsigned(to_signed(a) >> amount)
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq

        if op is Opcode.NOT:
            result = to_unsigned(~regs[instr.rs1])
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq
        if op is Opcode.MOV:
            regs[instr.rd] = regs[instr.rs1]
            self.psr.set_nz(regs[instr.rd])
            return None, seq
        if op is Opcode.LDI:
            regs[instr.rd] = to_unsigned(instr.imm)
            return None, seq
        if op is Opcode.LUI:
            regs[instr.rd] = to_unsigned(instr.imm << 14)
            return None, seq

        if op in (Opcode.CMP, Opcode.CMPI):
            a = regs[instr.rs1]
            b = regs[instr.rs2] if op is Opcode.CMP else to_unsigned(instr.imm)
            result, carry, overflow = _add_sub(a, b, subtract=True)
            self.psr.set_nz(result)
            self.psr.c = carry
            self.psr.v = overflow
            return None, seq

        if op is Opcode.LD:
            address = to_unsigned(regs[instr.rs1] + instr.imm)
            if address >= self.config.memory_size:
                raise IllegalAddress(address, "load")
            if address >= self.config.uncached_base:
                value = self.bus.read(address)
                self.cycles += 2  # uncached MMIO access
            else:
                value, extra = self.dcache.read(address, self.bus)
                self.cycles += extra
            regs[instr.rd] = value
            self.pipeline.latch_memory(address, value)
            self.last_exec.mem_address = address
            self.last_exec.mem_value = value
            return None, seq
        if op is Opcode.ST:
            address = to_unsigned(regs[instr.rs1] + instr.imm)
            if address >= self.config.memory_size:
                raise IllegalAddress(address, "store")
            value = regs[instr.rd]
            if address >= self.config.uncached_base:
                self.bus.write(address, value)
                self.cycles += 2  # uncached MMIO access
            else:
                self.cycles += self.dcache.write(address, value, self.bus)
            self.pipeline.latch_memory(address, value)
            self.last_exec.mem_address = address
            self.last_exec.mem_value = value
            self.last_exec.mem_is_write = True
            return None, seq

        if op is Opcode.PUSH:
            sp = to_unsigned(regs[isa.REG_SP] - 1)
            if sp >= self.config.memory_size:
                raise IllegalAddress(sp, "push")
            regs[isa.REG_SP] = sp
            self.cycles += self.dcache.write(sp, regs[instr.rd], self.bus)
            self.pipeline.latch_memory(sp, regs[instr.rd])
            return None, seq
        if op is Opcode.POP:
            sp = regs[isa.REG_SP]
            if sp >= self.config.memory_size:
                raise IllegalAddress(sp, "pop")
            value, extra = self.dcache.read(sp, self.bus)
            self.cycles += extra
            regs[instr.rd] = value
            regs[isa.REG_SP] = to_unsigned(sp + 1)
            self.pipeline.latch_memory(sp, value)
            return None, seq

        if op is Opcode.JMP:
            return None, _Next(pc=instr.imm, taken=True)
        if op is Opcode.JR:
            return None, _Next(pc=regs[instr.rs1], taken=True)
        if op is Opcode.CALL:
            regs[isa.REG_LR] = to_unsigned(self.pc + 1)
            return None, _Next(pc=instr.imm, taken=True)
        if op is Opcode.RET:
            return None, _Next(pc=regs[isa.REG_LR], taken=True)

        if op in isa.BRANCHES:
            taken = self._branch_taken(op)
            if taken:
                return None, _Next(pc=self.pc + 1 + instr.imm, taken=True)
            return None, seq

        if op is Opcode.TRAP:
            return self._raise_trap(Trap.SOFTWARE, code=instr.imm), seq

        raise AssertionError(f"unhandled opcode {op!r}")  # pragma: no cover

    def _branch_taken(self, op: Opcode) -> bool:
        psr = self.psr
        if op is Opcode.BEQ:
            return psr.z
        if op is Opcode.BNE:
            return not psr.z
        if op is Opcode.BLT:
            return psr.n != psr.v
        if op is Opcode.BGE:
            return psr.n == psr.v
        if op is Opcode.BGT:
            return (not psr.z) and psr.n == psr.v
        if op is Opcode.BLE:
            return psr.z or psr.n != psr.v
        raise AssertionError(op)  # pragma: no cover


def _add_sub(a: int, b: int, subtract: bool) -> Tuple[int, bool, bool]:
    """32-bit add/subtract with carry and signed-overflow flags."""
    if subtract:
        wide = a + (to_unsigned(~b)) + 1
        signed = to_signed(a) - to_signed(b)
    else:
        wide = a + b
        signed = to_signed(a) + to_signed(b)
    result = to_unsigned(wide)
    carry = wide > isa.WORD_MASK
    overflow = not (-(1 << 31) <= signed <= (1 << 31) - 1)
    return result, carry, overflow


# ---------------------------------------------------------------------------
# Fast-dispatch handler table
# ---------------------------------------------------------------------------
# One module-level handler per opcode, each an inlined transcription of
# the corresponding branch of Cpu._execute (the reference oracle). A
# handler returns ``(event, next_pc, taken)``; ``next_pc`` is masked and
# applied by the step loop unless the event is a trap. State-mutation
# *order* is preserved exactly — e.g. PUSH updates SP before the D-cache
# write that may raise on a protected page, so a trapping PUSH leaves
# the same partial state under both dispatchers.

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000
_SP = isa.REG_SP
_LR = isa.REG_LR

_HandlerResult = Tuple[Optional[CpuEvent], int, bool]
_Handler = Callable[["Cpu", Instruction], _HandlerResult]


def _h_nop(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    return None, cpu.pc + 1, False


def _h_halt(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    cpu.halted = True
    return CpuEvent(kind="halt"), cpu.pc + 1, False


def _h_sync(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    cpu.iterations += 1
    return CpuEvent(kind="sync", iteration=cpu.iterations), cpu.pc + 1, False


def _addsub_handler(subtract: bool, immediate: bool) -> _Handler:
    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        regs = cpu._regs
        a = regs[instr.rs1]
        b = (instr.imm & _M32) if immediate else regs[instr.rs2]
        sa = a - 0x100000000 if a & _SIGN else a
        sb = b - 0x100000000 if b & _SIGN else b
        if subtract:
            wide = a + ((~b) & _M32) + 1
            signed = sa - sb
        else:
            wide = a + b
            signed = sa + sb
        result = wide & _M32
        regs[instr.rd] = result
        psr = cpu.psr
        psr.z = result == 0
        psr.n = result >= _SIGN
        psr.c = wide > _M32
        overflow = signed < -2147483648 or signed > 2147483647
        psr.v = overflow
        if overflow and psr.overflow_enable:
            return cpu._raise_trap(Trap.OVERFLOW), 0, False
        return None, cpu.pc + 1, False

    return handler


def _mul_handler(immediate: bool) -> _Handler:
    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        regs = cpu._regs
        a = regs[instr.rs1]
        sa = a - 0x100000000 if a & _SIGN else a
        if immediate:
            sb = instr.imm
        else:
            b = regs[instr.rs2]
            sb = b - 0x100000000 if b & _SIGN else b
        result = (sa * sb) & _M32
        regs[instr.rd] = result
        psr = cpu.psr
        psr.z = result == 0
        psr.n = result >= _SIGN
        return None, cpu.pc + 1, False

    return handler


def _divmod_handler(is_div: bool) -> _Handler:
    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        regs = cpu._regs
        a = regs[instr.rs1]
        b = regs[instr.rs2]
        sa = a - 0x100000000 if a & _SIGN else a
        sb = b - 0x100000000 if b & _SIGN else b
        if sb == 0:
            return cpu._raise_trap(Trap.DIV_ZERO), 0, False
        quotient = int(sa / sb)  # truncate toward zero (reference idiom)
        result = (quotient if is_div else sa - quotient * sb) & _M32
        regs[instr.rd] = result
        psr = cpu.psr
        psr.z = result == 0
        psr.n = result >= _SIGN
        return None, cpu.pc + 1, False

    return handler


def _logic_handler(code: str, immediate: bool) -> _Handler:
    is_and = code == "and"
    is_or = code == "or"

    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        regs = cpu._regs
        a = regs[instr.rs1]
        b = (instr.imm & _M32) if immediate else regs[instr.rs2]
        if is_and:
            result = a & b
        elif is_or:
            result = a | b
        else:
            result = a ^ b
        regs[instr.rd] = result
        psr = cpu.psr
        psr.z = result == 0
        psr.n = result >= _SIGN
        return None, cpu.pc + 1, False

    return handler


def _shift_handler(code: str, immediate: bool) -> _Handler:
    is_shl = code == "shl"
    is_shr = code == "shr"

    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        regs = cpu._regs
        a = regs[instr.rs1]
        amount = (instr.imm & 31) if immediate else (regs[instr.rs2] & 31)
        if is_shl:
            result = (a << amount) & _M32
        elif is_shr:
            result = a >> amount
        else:  # SRA
            sa = a - 0x100000000 if a & _SIGN else a
            result = (sa >> amount) & _M32
        regs[instr.rd] = result
        psr = cpu.psr
        psr.z = result == 0
        psr.n = result >= _SIGN
        return None, cpu.pc + 1, False

    return handler


def _h_not(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    result = (~cpu._regs[instr.rs1]) & _M32
    cpu._regs[instr.rd] = result
    psr = cpu.psr
    psr.z = result == 0
    psr.n = result >= _SIGN
    return None, cpu.pc + 1, False


def _h_mov(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    regs = cpu._regs
    result = regs[instr.rs1]
    regs[instr.rd] = result
    psr = cpu.psr
    psr.z = result == 0
    psr.n = result >= _SIGN
    return None, cpu.pc + 1, False


def _h_ldi(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    cpu._regs[instr.rd] = instr.imm & _M32
    return None, cpu.pc + 1, False


def _h_lui(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    cpu._regs[instr.rd] = (instr.imm << 14) & _M32
    return None, cpu.pc + 1, False


def _cmp_handler(immediate: bool) -> _Handler:
    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        regs = cpu._regs
        a = regs[instr.rs1]
        b = (instr.imm & _M32) if immediate else regs[instr.rs2]
        wide = a + ((~b) & _M32) + 1
        result = wide & _M32
        sa = a - 0x100000000 if a & _SIGN else a
        sb = b - 0x100000000 if b & _SIGN else b
        signed = sa - sb
        psr = cpu.psr
        psr.z = result == 0
        psr.n = result >= _SIGN
        psr.c = wide > _M32
        psr.v = signed < -2147483648 or signed > 2147483647
        return None, cpu.pc + 1, False

    return handler


def _h_ld(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    address = (cpu._regs[instr.rs1] + instr.imm) & _M32
    if address >= cpu._memory_size:
        raise IllegalAddress(address, "load")
    if address >= cpu._uncached_base:
        value = cpu.bus.read(address)
        cpu.cycles += 2  # uncached MMIO access
    else:
        value, extra = cpu.dcache.read(address, cpu.bus)
        if extra:
            cpu.cycles += extra
    cpu._regs[instr.rd] = value
    pipeline = cpu.pipeline
    pipeline.mar = address
    pipeline.mdr = value
    last = cpu.last_exec
    last.mem_address = address
    last.mem_value = value
    return None, cpu.pc + 1, False


def _h_st(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    regs = cpu._regs
    address = (regs[instr.rs1] + instr.imm) & _M32
    if address >= cpu._memory_size:
        raise IllegalAddress(address, "store")
    value = regs[instr.rd]
    if address >= cpu._uncached_base:
        cpu.bus.write(address, value)
        cpu.cycles += 2  # uncached MMIO access
    else:
        cpu.dcache.write(address, value, cpu.bus)  # write buffer: 0 cycles
    pipeline = cpu.pipeline
    pipeline.mar = address
    pipeline.mdr = value
    last = cpu.last_exec
    last.mem_address = address
    last.mem_value = value
    last.mem_is_write = True
    return None, cpu.pc + 1, False


def _h_push(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    regs = cpu._regs
    sp = (regs[_SP] - 1) & _M32
    if sp >= cpu._memory_size:
        raise IllegalAddress(sp, "push")
    regs[_SP] = sp  # SP moves before a (possibly trapping) store
    value = regs[instr.rd]
    cpu.dcache.write(sp, value, cpu.bus)
    pipeline = cpu.pipeline
    pipeline.mar = sp
    pipeline.mdr = value
    return None, cpu.pc + 1, False


def _h_pop(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    regs = cpu._regs
    sp = regs[_SP]
    if sp >= cpu._memory_size:
        raise IllegalAddress(sp, "pop")
    value, extra = cpu.dcache.read(sp, cpu.bus)
    if extra:
        cpu.cycles += extra
    regs[instr.rd] = value
    regs[_SP] = (sp + 1) & _M32
    pipeline = cpu.pipeline
    pipeline.mar = sp
    pipeline.mdr = value
    return None, cpu.pc + 1, False


def _h_jmp(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    return None, instr.imm, True


def _h_jr(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    return None, cpu._regs[instr.rs1], True


def _h_call(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    cpu._regs[_LR] = (cpu.pc + 1) & _M32
    return None, instr.imm, True


def _h_ret(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    return None, cpu._regs[_LR], True


def _h_trap(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
    return cpu._raise_trap(Trap.SOFTWARE, code=instr.imm), 0, False


# Branch predicates over the PSR, used to generate one handler per
# conditional branch; coverage is derived from isa.SEMANTICS below.
_BRANCH_PREDICATES: Dict[Opcode, Callable[[Psr], bool]] = {
    Opcode.BEQ: lambda psr: psr.z,
    Opcode.BNE: lambda psr: not psr.z,
    Opcode.BLT: lambda psr: psr.n != psr.v,
    Opcode.BGE: lambda psr: psr.n == psr.v,
    Opcode.BGT: lambda psr: (not psr.z) and psr.n == psr.v,
    Opcode.BLE: lambda psr: psr.z or psr.n != psr.v,
}


def _branch_handler(predicate: Callable[[Psr], bool]) -> _Handler:
    def handler(cpu: "Cpu", instr: Instruction) -> _HandlerResult:
        if predicate(cpu.psr):
            return None, cpu.pc + 1 + instr.imm, True
        return None, cpu.pc + 1, False

    return handler


def _build_handlers() -> Dict[Opcode, _Handler]:
    handlers: Dict[Opcode, _Handler] = {
        Opcode.NOP: _h_nop,
        Opcode.HALT: _h_halt,
        Opcode.SYNC: _h_sync,
        Opcode.ADD: _addsub_handler(subtract=False, immediate=False),
        Opcode.SUB: _addsub_handler(subtract=True, immediate=False),
        Opcode.ADDI: _addsub_handler(subtract=False, immediate=True),
        Opcode.SUBI: _addsub_handler(subtract=True, immediate=True),
        Opcode.MUL: _mul_handler(immediate=False),
        Opcode.MULI: _mul_handler(immediate=True),
        Opcode.DIV: _divmod_handler(is_div=True),
        Opcode.MOD: _divmod_handler(is_div=False),
        Opcode.AND: _logic_handler("and", immediate=False),
        Opcode.OR: _logic_handler("or", immediate=False),
        Opcode.XOR: _logic_handler("xor", immediate=False),
        Opcode.ANDI: _logic_handler("and", immediate=True),
        Opcode.ORI: _logic_handler("or", immediate=True),
        Opcode.XORI: _logic_handler("xor", immediate=True),
        Opcode.SHL: _shift_handler("shl", immediate=False),
        Opcode.SHR: _shift_handler("shr", immediate=False),
        Opcode.SRA: _shift_handler("sra", immediate=False),
        Opcode.SHLI: _shift_handler("shl", immediate=True),
        Opcode.SHRI: _shift_handler("shr", immediate=True),
        Opcode.NOT: _h_not,
        Opcode.MOV: _h_mov,
        Opcode.LDI: _h_ldi,
        Opcode.LUI: _h_lui,
        Opcode.CMP: _cmp_handler(immediate=False),
        Opcode.CMPI: _cmp_handler(immediate=True),
        Opcode.LD: _h_ld,
        Opcode.ST: _h_st,
        Opcode.PUSH: _h_push,
        Opcode.POP: _h_pop,
        Opcode.JMP: _h_jmp,
        Opcode.JR: _h_jr,
        Opcode.CALL: _h_call,
        Opcode.RET: _h_ret,
        Opcode.TRAP: _h_trap,
    }
    handlers.update(
        {
            op: _branch_handler(predicate)
            for op, predicate in _BRANCH_PREDICATES.items()
        }
    )
    # Derive coverage and control-flow agreement from the shared
    # semantics table rather than trusting the literals above.
    assert set(handlers) == set(isa.SEMANTICS), (
        "fast-dispatch handler table must cover every opcode"
    )
    branch_ops = {
        op for op, sem in isa.SEMANTICS.items()
        if sem.flow == isa.FLOW_BRANCH
    }
    assert branch_ops == set(_BRANCH_PREDICATES), (
        "branch predicates out of sync with isa.SEMANTICS"
    )
    return handlers


_HANDLERS: Dict[Opcode, _Handler] = _build_handlers()
_COST: Dict[Opcode, int] = dict(isa.CYCLE_COST)

#: Memoized fused-dispatch entries: instruction word ->
#: (frozen Instruction, handler, base cycle cost). Shares the decode
#: memo's no-poisoning property — illegal words never get an entry — and
#: the same clear-on-full size bound.
_EXEC_CACHE: Dict[int, Tuple[Instruction, _Handler, int]] = {}
_EXEC_CACHE_MAX = 1 << 16


def _exec_entry(word: int) -> Optional[Tuple[Instruction, _Handler, int]]:
    instr = isa.try_decode(word)
    if instr is None:
        return None
    entry = (instr, _HANDLERS[instr.opcode], _COST[instr.opcode])
    if len(_EXEC_CACHE) >= _EXEC_CACHE_MAX:
        _EXEC_CACHE.clear()
    _EXEC_CACHE[word] = entry
    return entry
