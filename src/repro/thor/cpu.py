"""THOR-lite CPU core: functional execution with cycle accounting.

The core executes one instruction per :meth:`Cpu.step`, charging base
cycle costs plus cache-miss penalties, and raising traps through the
error-detection mechanisms in :mod:`repro.thor.traps`. A trap halts the
CPU (the experiment terminates with a *detected error*, per the paper's
termination conditions); ``SYNC`` emits an iteration-boundary event used
by the environment-simulator exchange; ``HALT`` terminates the workload
normally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.thor import isa
from repro.thor.cache import Cache, CacheParityError
from repro.thor.isa import Instruction, IllegalOpcode, Opcode
from repro.thor.memory import IllegalAddress, Memory, MemoryBus
from repro.thor.pipeline import PipelineLatches
from repro.thor.registers import Psr, RegisterFile
from repro.thor.traps import Trap, TrapEvent
from repro.util.bits import to_signed, to_unsigned


@dataclass(frozen=True)
class CpuConfig:
    """Static configuration of one THOR-lite chip."""

    memory_size: int = 65536
    icache_lines: int = 16
    dcache_lines: int = 16
    words_per_line: int = 4
    miss_penalty: int = 8
    parity_checking: bool = True
    overflow_trap: bool = False
    # Memory-mapped I/O window (the environment-simulator exchange area):
    # loads/stores at or above this address bypass the D-cache, as real
    # MMIO regions must — the environment simulator writes this window
    # from outside the cache hierarchy.
    uncached_base: int = 0xFF00
    # CPU-internal watchdog: traps when a single run exceeds this many
    # cycles. None disables it (the test card still enforces its own
    # experiment timeout).
    watchdog_cycles: Optional[int] = None

    @property
    def address_bits(self) -> int:
        return max(1, (self.memory_size - 1).bit_length())


@dataclass
class LastExec:
    """What the last executed instruction did — consumed by fault triggers
    (branch / call / data-access triggers of the paper's Section 4)."""

    pc: int = 0
    opcode: Optional[Opcode] = None
    branch_taken: bool = False
    mem_address: Optional[int] = None
    mem_value: Optional[int] = None
    mem_is_write: bool = False
    reg_reads: Tuple[int, ...] = ()
    reg_writes: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CpuEvent:
    """Event surfaced by one step: "halt", "trap" or "sync"."""

    kind: str
    trap: Optional[TrapEvent] = None
    iteration: int = 0


class CpuHalted(Exception):
    """step() was called on a halted CPU."""


@dataclass
class _Next:
    """Control-flow decision of the executing instruction."""

    pc: int
    taken: bool = False


class Cpu:
    """One THOR-lite chip: registers, PSR, PC, pipeline latches, caches,
    memory, cycle/instruction counters."""

    def __init__(self, config: Optional[CpuConfig] = None):
        self.config = config or CpuConfig()
        self.memory = Memory(self.config.memory_size)
        self.bus = MemoryBus(self.memory)
        self.regs = RegisterFile()
        self.psr = Psr()
        self.pipeline = PipelineLatches()
        self.icache = Cache(
            "icache",
            n_lines=self.config.icache_lines,
            words_per_line=self.config.words_per_line,
            miss_penalty=self.config.miss_penalty,
            check_parity=self.config.parity_checking,
            address_bits=self.config.address_bits,
        )
        self.dcache = Cache(
            "dcache",
            n_lines=self.config.dcache_lines,
            words_per_line=self.config.words_per_line,
            miss_penalty=self.config.miss_penalty,
            check_parity=self.config.parity_checking,
            address_bits=self.config.address_bits,
        )
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.iterations = 0
        self.halted = False
        self.trap_event: Optional[TrapEvent] = None
        self.last_exec = LastExec()

    # -- lifecycle -----------------------------------------------------------

    def reset(self, entry: int = 0) -> None:
        """Power-on reset: clears all state except main memory contents
        (memory is loaded separately by the test card download port)."""
        overflow = self.config.overflow_trap
        self.regs.reset()
        self.psr.reset()
        self.psr.overflow_enable = overflow
        self.pipeline.reset()
        self.icache.reset()
        self.dcache.reset()
        self.bus.reset_force()
        self.pc = entry
        self.cycles = 0
        self.instret = 0
        self.iterations = 0
        self.halted = False
        self.trap_event = None
        self.last_exec = LastExec()

    def clear_trap(self) -> None:
        """Un-halt after a trap without touching any other state.

        Used by the test card's trap-hook path (runtime SWIFI resumes the
        workload after servicing the software trap it planted)."""
        self.halted = False
        self.trap_event = None

    # -- checkpoint support (golden-run warm starts) ---------------------------

    def snapshot(self) -> dict:
        """Everything but main memory, as plain picklable data.

        Captured at instruction boundaries along the trap-free reference
        run, so ``halted`` is False and no trap is latched; ``last_exec``
        is included because fault triggers consume it."""
        last = self.last_exec
        return {
            "regs": self.regs.snapshot(),
            "psr": self.psr.to_word(),
            "pipeline": self.pipeline.snapshot(),
            "icache": self.icache.snapshot_state(),
            "dcache": self.dcache.snapshot_state(),
            "bus": (
                self.bus.force_mask,
                self.bus.force_value,
                self.bus.force_reads,
            ),
            "pc": self.pc,
            "cycles": self.cycles,
            "instret": self.instret,
            "iterations": self.iterations,
            "last_exec": (
                last.pc,
                None if last.opcode is None else last.opcode.name,
                last.branch_taken,
                last.mem_address,
                last.mem_value,
                last.mem_is_write,
                tuple(last.reg_reads),
                tuple(last.reg_writes),
            ),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (memory is restored separately by
        the test card's page loads). Leaves the CPU running (not halted,
        no trap latched) exactly as it was at the capture boundary."""
        self.regs.restore(state["regs"])
        self.psr.from_word(state["psr"])
        self.pipeline.restore(state["pipeline"])
        self.icache.restore_state(state["icache"])
        self.dcache.restore_state(state["dcache"])
        force_mask, force_value, force_reads = state["bus"]
        self.bus.force_mask = force_mask
        self.bus.force_value = force_value
        self.bus.force_reads = force_reads
        self.pc = state["pc"]
        self.cycles = state["cycles"]
        self.instret = state["instret"]
        self.iterations = state["iterations"]
        self.halted = False
        self.trap_event = None
        (
            pc,
            opcode_name,
            branch_taken,
            mem_address,
            mem_value,
            mem_is_write,
            reg_reads,
            reg_writes,
        ) = state["last_exec"]
        self.last_exec = LastExec(
            pc=pc,
            opcode=None if opcode_name is None else Opcode[opcode_name],
            branch_taken=branch_taken,
            mem_address=mem_address,
            mem_value=mem_value,
            mem_is_write=mem_is_write,
            reg_reads=tuple(reg_reads),
            reg_writes=tuple(reg_writes),
        )

    # -- trap path -------------------------------------------------------------

    def _raise_trap(self, trap: Trap, detail: str = "", code: int = 0) -> CpuEvent:
        event = TrapEvent(
            trap=trap, pc=self.pc, cycle=self.cycles, detail=detail, code=code
        )
        self.trap_event = event
        self.halted = True
        return CpuEvent(kind="trap", trap=event)

    # -- execution ----------------------------------------------------------------

    def step(self) -> Optional[CpuEvent]:
        """Execute one instruction. Returns an event or None."""
        if self.halted:
            raise CpuHalted("CPU is halted")

        start_pc = self.pc

        # Fetch (through the I-cache, unless the scan chain forced the IR).
        if self.pipeline.ir_forced:
            word = self.pipeline.consume_forced_ir()
            self.cycles += 0  # forced IR models an already-latched fetch
        else:
            if not 0 <= self.pc < self.config.memory_size:
                return self._raise_trap(
                    Trap.ILLEGAL_ADDRESS, detail=f"fetch from {self.pc:#x}"
                )
            try:
                word, extra = self.icache.read(self.pc, self.bus)
            except CacheParityError as exc:
                return self._raise_trap(Trap.ICACHE_PARITY, detail=str(exc))
            self.cycles += extra
            self.pipeline.latch_fetch(word)

        # Decode.
        try:
            instr = isa.decode(word)
        except IllegalOpcode:
            return self._raise_trap(
                Trap.ILLEGAL_OPCODE, detail=f"word {word:#010x}"
            )

        # Execute.
        self.cycles += isa.CYCLE_COST[instr.opcode]
        try:
            event, nxt = self._execute(instr)
        except CacheParityError as exc:
            return self._raise_trap(Trap.DCACHE_PARITY, detail=str(exc))
        except IllegalAddress as exc:
            return self._raise_trap(Trap.ILLEGAL_ADDRESS, detail=str(exc))

        if event is not None and event.kind == "trap":
            return event

        if nxt.taken:
            self.cycles += 1
        self.pc = nxt.pc & isa.WORD_MASK
        self.instret += 1
        self.last_exec.pc = start_pc
        self.last_exec.opcode = instr.opcode
        self.last_exec.branch_taken = nxt.taken

        if (
            self.config.watchdog_cycles is not None
            and self.cycles > self.config.watchdog_cycles
        ):
            return self._raise_trap(
                Trap.WATCHDOG, detail=f"cycle budget {self.config.watchdog_cycles}"
            )
        return event

    # -- per-opcode semantics -----------------------------------------------------

    def _execute(self, instr: Instruction) -> Tuple[Optional[CpuEvent], _Next]:
        op = instr.opcode
        regs = self.regs
        seq = _Next(pc=self.pc + 1)
        self.last_exec = LastExec()

        if op is Opcode.NOP:
            return None, seq
        if op is Opcode.HALT:
            self.halted = True
            return CpuEvent(kind="halt"), seq
        if op is Opcode.SYNC:
            self.iterations += 1
            return CpuEvent(kind="sync", iteration=self.iterations), seq

        if op in (Opcode.ADD, Opcode.SUB, Opcode.ADDI, Opcode.SUBI):
            a = regs[instr.rs1]
            if op in (Opcode.ADD, Opcode.SUB):
                b = regs[instr.rs2]
            else:
                b = to_unsigned(instr.imm)
            subtract = op in (Opcode.SUB, Opcode.SUBI)
            result, carry, overflow = _add_sub(a, b, subtract)
            regs[instr.rd] = result
            self.psr.set_nz(result)
            self.psr.c = carry
            self.psr.v = overflow
            if overflow and self.psr.overflow_enable:
                return self._raise_trap(Trap.OVERFLOW), seq
            return None, seq

        if op in (Opcode.MUL, Opcode.MULI):
            a = to_signed(regs[instr.rs1])
            b = to_signed(regs[instr.rs2]) if op is Opcode.MUL else instr.imm
            result = to_unsigned(a * b)
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq

        if op in (Opcode.DIV, Opcode.MOD):
            a = to_signed(regs[instr.rs1])
            b = to_signed(regs[instr.rs2])
            if b == 0:
                return self._raise_trap(Trap.DIV_ZERO), seq
            quotient = int(a / b)  # truncate toward zero
            result = quotient if op is Opcode.DIV else a - quotient * b
            regs[instr.rd] = to_unsigned(result)
            self.psr.set_nz(regs[instr.rd])
            return None, seq

        if op in (Opcode.AND, Opcode.OR, Opcode.XOR,
                  Opcode.ANDI, Opcode.ORI, Opcode.XORI):
            a = regs[instr.rs1]
            if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
                b = regs[instr.rs2]
            else:
                b = to_unsigned(instr.imm)
            if op in (Opcode.AND, Opcode.ANDI):
                result = a & b
            elif op in (Opcode.OR, Opcode.ORI):
                result = a | b
            else:
                result = a ^ b
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq

        if op in (Opcode.SHL, Opcode.SHR, Opcode.SRA,
                  Opcode.SHLI, Opcode.SHRI):
            a = regs[instr.rs1]
            if op in (Opcode.SHL, Opcode.SHR, Opcode.SRA):
                amount = regs[instr.rs2] & 31
            else:
                amount = instr.imm & 31
            if op in (Opcode.SHL, Opcode.SHLI):
                result = to_unsigned(a << amount)
            elif op in (Opcode.SHR, Opcode.SHRI):
                result = a >> amount
            else:  # SRA
                result = to_unsigned(to_signed(a) >> amount)
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq

        if op is Opcode.NOT:
            result = to_unsigned(~regs[instr.rs1])
            regs[instr.rd] = result
            self.psr.set_nz(result)
            return None, seq
        if op is Opcode.MOV:
            regs[instr.rd] = regs[instr.rs1]
            self.psr.set_nz(regs[instr.rd])
            return None, seq
        if op is Opcode.LDI:
            regs[instr.rd] = to_unsigned(instr.imm)
            return None, seq
        if op is Opcode.LUI:
            regs[instr.rd] = to_unsigned(instr.imm << 14)
            return None, seq

        if op in (Opcode.CMP, Opcode.CMPI):
            a = regs[instr.rs1]
            b = regs[instr.rs2] if op is Opcode.CMP else to_unsigned(instr.imm)
            result, carry, overflow = _add_sub(a, b, subtract=True)
            self.psr.set_nz(result)
            self.psr.c = carry
            self.psr.v = overflow
            return None, seq

        if op is Opcode.LD:
            address = to_unsigned(regs[instr.rs1] + instr.imm)
            if address >= self.config.memory_size:
                raise IllegalAddress(address, "load")
            if address >= self.config.uncached_base:
                value = self.bus.read(address)
                self.cycles += 2  # uncached MMIO access
            else:
                value, extra = self.dcache.read(address, self.bus)
                self.cycles += extra
            regs[instr.rd] = value
            self.pipeline.latch_memory(address, value)
            self.last_exec.mem_address = address
            self.last_exec.mem_value = value
            return None, seq
        if op is Opcode.ST:
            address = to_unsigned(regs[instr.rs1] + instr.imm)
            if address >= self.config.memory_size:
                raise IllegalAddress(address, "store")
            value = regs[instr.rd]
            if address >= self.config.uncached_base:
                self.bus.write(address, value)
                self.cycles += 2  # uncached MMIO access
            else:
                self.cycles += self.dcache.write(address, value, self.bus)
            self.pipeline.latch_memory(address, value)
            self.last_exec.mem_address = address
            self.last_exec.mem_value = value
            self.last_exec.mem_is_write = True
            return None, seq

        if op is Opcode.PUSH:
            sp = to_unsigned(regs[isa.REG_SP] - 1)
            if sp >= self.config.memory_size:
                raise IllegalAddress(sp, "push")
            regs[isa.REG_SP] = sp
            self.cycles += self.dcache.write(sp, regs[instr.rd], self.bus)
            self.pipeline.latch_memory(sp, regs[instr.rd])
            return None, seq
        if op is Opcode.POP:
            sp = regs[isa.REG_SP]
            if sp >= self.config.memory_size:
                raise IllegalAddress(sp, "pop")
            value, extra = self.dcache.read(sp, self.bus)
            self.cycles += extra
            regs[instr.rd] = value
            regs[isa.REG_SP] = to_unsigned(sp + 1)
            self.pipeline.latch_memory(sp, value)
            return None, seq

        if op is Opcode.JMP:
            return None, _Next(pc=instr.imm, taken=True)
        if op is Opcode.JR:
            return None, _Next(pc=regs[instr.rs1], taken=True)
        if op is Opcode.CALL:
            regs[isa.REG_LR] = to_unsigned(self.pc + 1)
            return None, _Next(pc=instr.imm, taken=True)
        if op is Opcode.RET:
            return None, _Next(pc=regs[isa.REG_LR], taken=True)

        if op in isa.BRANCHES:
            taken = self._branch_taken(op)
            if taken:
                return None, _Next(pc=self.pc + 1 + instr.imm, taken=True)
            return None, seq

        if op is Opcode.TRAP:
            return self._raise_trap(Trap.SOFTWARE, code=instr.imm), seq

        raise AssertionError(f"unhandled opcode {op!r}")  # pragma: no cover

    def _branch_taken(self, op: Opcode) -> bool:
        psr = self.psr
        if op is Opcode.BEQ:
            return psr.z
        if op is Opcode.BNE:
            return not psr.z
        if op is Opcode.BLT:
            return psr.n != psr.v
        if op is Opcode.BGE:
            return psr.n == psr.v
        if op is Opcode.BGT:
            return (not psr.z) and psr.n == psr.v
        if op is Opcode.BLE:
            return psr.z or psr.n != psr.v
        raise AssertionError(op)  # pragma: no cover


def _add_sub(a: int, b: int, subtract: bool) -> Tuple[int, bool, bool]:
    """32-bit add/subtract with carry and signed-overflow flags."""
    if subtract:
        wide = a + (to_unsigned(~b)) + 1
        signed = to_signed(a) - to_signed(b)
    else:
        wide = a + b
        signed = to_signed(a) + to_signed(b)
    result = to_unsigned(wide)
    carry = wide > isa.WORD_MASK
    overflow = not (-(1 << 31) <= signed <= (1 << 31) - 1)
    return result, carry, overflow
