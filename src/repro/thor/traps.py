"""Error-detection mechanisms (EDMs) of the THOR-lite target.

The analysis phase classifies *Detected errors* per mechanism (paper
Section 3.4), so every hardware detection carries a :class:`Trap` tag
naming the mechanism that fired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Trap(enum.Enum):
    """Hardware error-detection mechanisms and software traps."""

    ILLEGAL_OPCODE = "illegal_opcode"
    ILLEGAL_ADDRESS = "illegal_address"
    DIV_ZERO = "div_zero"
    OVERFLOW = "overflow"
    ICACHE_PARITY = "icache_parity"
    DCACHE_PARITY = "dcache_parity"
    WATCHDOG = "watchdog"
    SOFTWARE = "software"

    @property
    def is_hardware_edm(self) -> bool:
        return self is not Trap.SOFTWARE


@dataclass(frozen=True)
class TrapEvent:
    """A single detection event, logged into the experiment state vector."""

    trap: Trap
    pc: int
    cycle: int
    detail: str = ""
    code: int = 0  # software trap code (TRAP imm)

    def describe(self) -> str:
        text = f"{self.trap.value} at pc={self.pc:#06x} cycle={self.cycle}"
        if self.detail:
            text += f" ({self.detail})"
        return text
