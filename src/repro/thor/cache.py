"""Parity-protected caches.

The Thor RD — the paper's target chip — features parity-protected
instruction and data caches; cache parity is one of its main
error-detection mechanisms and a large share of SCIFI injections land in
the cache arrays. THOR-lite models a direct-mapped, write-through,
write-allocate-on-read cache whose *stored* state (valid bits, tags, data
words and their parity bits) is genuine mutable state reachable from the
internal scan chain.

Parity convention: each protected field stores one even-parity bit, so a
single bit flip in either the field or its parity bit is detected on the
next access. A double flip inside one field escapes the parity check —
which is why the multiplicity benchmark (E7) sees more escapes with
multiple simultaneous flips.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.thor.memory import WORD_TYPECODE
from repro.util.bits import _BYTE_PARITY, parity

DEFAULT_LINES = 16
DEFAULT_WORDS_PER_LINE = 4
DEFAULT_MISS_PENALTY = 8


class CacheParityError(Exception):
    """A parity check failed on access. The CPU converts this into the
    ICACHE_PARITY / DCACHE_PARITY trap depending on which cache raised it."""

    def __init__(self, cache_name: str, line: int, array: str, address: int):
        self.cache_name = cache_name
        self.line = line
        self.array = array  # "tag" or "data"
        self.address = address
        super().__init__(
            f"{cache_name}: {array} parity error in line {line} "
            f"(access to {address:#x})"
        )


@dataclass
class CacheLine:
    """One direct-mapped line. ``data``/``data_parity`` are contiguous
    typed arrays (not lists) so snapshot/restore and checkpoint digests
    move them as buffers; scan-chain cells index them exactly as they
    indexed the former lists."""

    valid: bool = False
    tag: int = 0
    tag_parity: int = 0
    data: array = field(default_factory=lambda: array(WORD_TYPECODE))
    data_parity: array = field(default_factory=lambda: array("B"))


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    parity_errors: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.parity_errors = 0


def _as_array(values: Sequence[int], typecode: str) -> array:
    """Coerce a snapshot row to the line's array type (snapshots made by
    this build already are; integer sequences are converted)."""
    if isinstance(values, array) and values.typecode == typecode:
        return values
    return array(typecode, values)


class Cache:
    """Direct-mapped, write-through cache with per-word and per-tag parity."""

    def __init__(
        self,
        name: str,
        n_lines: int = DEFAULT_LINES,
        words_per_line: int = DEFAULT_WORDS_PER_LINE,
        miss_penalty: int = DEFAULT_MISS_PENALTY,
        check_parity: bool = True,
        address_bits: int = 16,
    ):
        if n_lines <= 0 or (n_lines & (n_lines - 1)):
            raise ValueError(f"n_lines must be a power of two, got {n_lines}")
        if words_per_line <= 0 or (words_per_line & (words_per_line - 1)):
            raise ValueError(
                f"words_per_line must be a power of two, got {words_per_line}"
            )
        self.name = name
        self.n_lines = n_lines
        self.words_per_line = words_per_line
        self.miss_penalty = miss_penalty
        self.check_parity = check_parity
        self._offset_bits = words_per_line.bit_length() - 1
        self._index_bits = n_lines.bit_length() - 1
        # Hot-path address split without the split() tuple round-trip.
        self._offset_mask = words_per_line - 1
        self._index_mask = n_lines - 1
        self._tag_shift = self._offset_bits + self._index_bits
        self.tag_bits = max(1, address_bits - self._offset_bits - self._index_bits)
        self.lines: List[CacheLine] = []
        self.stats = CacheStats()
        self.reset()

    def reset(self) -> None:
        words = self.words_per_line
        self.lines = [
            CacheLine(
                valid=False,
                tag=0,
                tag_parity=0,
                data=array(WORD_TYPECODE, (0,)) * words,
                data_parity=array("B", (0,)) * words,
            )
            for _ in range(self.n_lines)
        ]
        self.stats.reset()

    # -- address split -----------------------------------------------------

    def split(self, address: int) -> Tuple[int, int, int]:
        offset = address & (self.words_per_line - 1)
        index = (address >> self._offset_bits) & (self.n_lines - 1)
        tag = address >> (self._offset_bits + self._index_bits)
        return tag, index, offset

    # -- access path ---------------------------------------------------------

    def _check_tag(self, line: CacheLine, index: int, address: int) -> None:
        if self.check_parity and parity(line.tag) != line.tag_parity:
            self.stats.parity_errors += 1
            raise CacheParityError(self.name, index, "tag", address)

    def read(self, address: int, memory) -> Tuple[int, int]:
        """Read one word through the cache.

        Returns ``(value, extra_cycles)`` where ``extra_cycles`` is the
        miss penalty (0 on a hit). Raises :class:`CacheParityError` when a
        stored parity bit disagrees with its protected field.

        The hit path is the single hottest call in the simulator (every
        fetch crosses it), so the address split and the parity folds are
        inlined here: a scan write masks any stored field to its cell
        width (< 33 bits), so the four-byte XOR fold is always exact.
        """
        offset = address & self._offset_mask
        index = (address >> self._offset_bits) & self._index_mask
        tag = address >> self._tag_shift
        line = self.lines[index]
        table = _BYTE_PARITY
        if line.valid:
            if self.check_parity:
                stored = line.tag
                if (
                    table[stored & 0xFF]
                    ^ table[(stored >> 8) & 0xFF]
                    ^ table[(stored >> 16) & 0xFF]
                    ^ table[(stored >> 24) & 0xFF]
                ) != line.tag_parity:
                    self.stats.parity_errors += 1
                    raise CacheParityError(self.name, index, "tag", address)
            if line.tag == tag:
                value = line.data[offset]
                if self.check_parity and (
                    table[value & 0xFF]
                    ^ table[(value >> 8) & 0xFF]
                    ^ table[(value >> 16) & 0xFF]
                    ^ table[value >> 24]
                ) != line.data_parity[offset]:
                    self.stats.parity_errors += 1
                    raise CacheParityError(self.name, index, "data", address)
                self.stats.hits += 1
                return value, 0
        # Miss: fill the whole line from memory.
        self.stats.misses += 1
        base = address - offset
        line.valid = True
        line.tag = tag
        line.tag_parity = parity(tag)
        for i in range(self.words_per_line):
            word = memory.read(base + i)
            line.data[i] = word
            line.data_parity[i] = parity(word)
        return line.data[offset], self.miss_penalty

    def write(self, address: int, value: int, memory) -> int:
        """Write-through one word. Returns extra cycles (always 0: the
        write buffer hides the memory latency in this model)."""
        memory.write(address, value)
        tag, index, offset = self.split(address)
        line = self.lines[index]
        if line.valid:
            self._check_tag(line, index, address)
            if line.tag == tag:
                line.data[offset] = value
                line.data_parity[offset] = parity(value)
                self.stats.hits += 1
                return 0
        self.stats.misses += 1
        return 0

    def invalidate_all(self) -> None:
        for line in self.lines:
            line.valid = False

    # -- scan-chain access ----------------------------------------------------
    # The scan chain exposes every stored bit of the arrays. These accessors
    # are the raw state ports it uses; they perform no parity maintenance —
    # that is the whole point: a scan write can create a parity violation.

    def peek_line(self, index: int) -> CacheLine:
        return self.lines[index]

    # -- checkpoint support ----------------------------------------------------
    # Snapshot/restore mutate the existing CacheLine objects in place (the
    # scan cells close over the cache object and index lines on access, so
    # either would work — in-place keeps allocation off the restore path).

    def snapshot_state(self) -> dict:
        """Full stored state of the arrays plus the access counters (the
        counters are deterministic along the reference run, so restoring
        them keeps a warm experiment bit-identical to a cold one). Line
        data travels as typed ``array`` copies — buffer copies on
        capture, ``tobytes`` feeds on digest."""
        return {
            "lines": [
                (
                    line.valid,
                    line.tag,
                    line.tag_parity,
                    line.data[:],
                    line.data_parity[:],
                )
                for line in self.lines
            ],
            "stats": (
                self.stats.hits,
                self.stats.misses,
                self.stats.parity_errors,
            ),
        }

    def restore_state(self, state: dict) -> None:
        for line, snap in zip(self.lines, state["lines"]):
            valid, tag, tag_parity, data, data_parity = snap
            line.valid = bool(valid)
            line.tag = tag
            line.tag_parity = tag_parity
            line.data[:] = _as_array(data, line.data.typecode)
            line.data_parity[:] = _as_array(data_parity, "B")
        hits, misses, parity_errors = state["stats"]
        self.stats.hits = hits
        self.stats.misses = misses
        self.stats.parity_errors = parity_errors
