"""Architectural registers of THOR-lite: the register file and the PSR.

Both are prime fault-injection targets: in the Thor experiments of the
paper's companion studies, most effective scan-chain injections land in the
register file and the processor status word.
"""

from __future__ import annotations

from typing import List

from repro.thor.isa import NUM_REGISTERS, WORD_MASK


class RegisterFile:
    """Sixteen 32-bit general-purpose registers.

    The backing list is allocated once and only ever mutated in place:
    the CPU's fast dispatch path aliases it (``Cpu._regs``) so handlers
    can hit the register file with single C-level list indexing. Every
    write path masks to ``WORD_MASK``, so the list invariantly holds
    values in ``[0, 2**32)``.
    """

    def __init__(self) -> None:
        self._regs: List[int] = [0] * NUM_REGISTERS

    def reset(self) -> None:
        self._regs[:] = [0] * NUM_REGISTERS

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        self._regs[index] = value & WORD_MASK

    def snapshot(self) -> List[int]:
        return list(self._regs)

    def restore(self, values: List[int]) -> None:
        """Checkpoint restore: replace the whole file at once (in place —
        see the class invariant)."""
        if len(values) != NUM_REGISTERS:
            raise ValueError(
                f"register snapshot needs {NUM_REGISTERS} values, "
                f"got {len(values)}"
            )
        self._regs[:] = [value & WORD_MASK for value in values]

    def __getitem__(self, index: int) -> int:
        return self._regs[index]

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)


class Psr:
    """Processor status register.

    Bit layout (matters for scan-chain injection — flipping bit *i* of the
    PSR cell flips the corresponding flag; only physically existing
    flip-flops appear on the chain)::

        bit 0  Z   zero
        bit 1  N   negative
        bit 2  C   carry
        bit 3  V   overflow
        bit 4  OE  overflow-trap enable (configuration bit)
    """

    WIDTH = 5

    BIT_Z = 0
    BIT_N = 1
    BIT_C = 2
    BIT_V = 3
    BIT_OE = 4

    def __init__(self) -> None:
        self.z = False
        self.n = False
        self.c = False
        self.v = False
        self.overflow_enable = False

    def reset(self) -> None:
        self.z = self.n = self.c = self.v = False
        # overflow_enable is configuration, preserved across reset by the
        # CPU (it re-applies its config after calling reset).
        self.overflow_enable = False

    def set_nz(self, value: int) -> None:
        value &= WORD_MASK
        self.z = value == 0
        self.n = bool(value & 0x80000000)

    def to_word(self) -> int:
        word = 0
        word |= int(self.z) << self.BIT_Z
        word |= int(self.n) << self.BIT_N
        word |= int(self.c) << self.BIT_C
        word |= int(self.v) << self.BIT_V
        word |= int(self.overflow_enable) << self.BIT_OE
        return word

    def from_word(self, word: int) -> None:
        self.z = bool(word & (1 << self.BIT_Z))
        self.n = bool(word & (1 << self.BIT_N))
        self.c = bool(word & (1 << self.BIT_C))
        self.v = bool(word & (1 << self.BIT_V))
        self.overflow_enable = bool(word & (1 << self.BIT_OE))
