"""Scan chains: serialized access to the target's state elements.

The Thor RD exposes its internal state through IEEE-1149.1-style boundary
and internal scan chains; the SCIFI technique (the paper's main
implemented technique) reads the chains, flips bits, and writes them back.
This module models a chain as an ordered list of :class:`ScanCell` objects,
each mapping a contiguous bit range of the serialized chain onto one state
element. Some cells are read-only — "some locations in the scan-chain are
read-only and can therefore only be used to observe the state of the
microprocessor" (paper Section 3.1) — writes to them are silently dropped
by the hardware, and the campaign layer refuses to *target* them.

Chain access is modelled with its real cost: shifting a chain in or out
takes one clock per bit, surfaced as :attr:`ScanChain.shift_cycles` and an
operation counter, which the E1/E2 benchmarks use.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.thor.cpu import Cpu
from repro.thor.traps import Trap
from repro.util.errors import TargetError

# Fixed encoding of the trap-status scan cell (0 = no trap latched).
_TRAP_CODES = {trap: index + 1 for index, trap in enumerate(Trap)}

# Byte-granular shift tables: full-chain reads and writes move 8 bits
# per table access instead of one Python-level mask/shift per bit (the
# chains are ~4.6 Kbit and every SCIFI experiment shifts them three
# times, so per-bit loops were a measurable campaign cost).
_BITS_OF_BYTE: Tuple[Tuple[int, ...], ...] = tuple(
    tuple((value >> i) & 1 for i in range(8)) for value in range(256)
)
# Inverse table. Bit lists that went through injection may hold bools
# (``apply_op`` results); True/False hash as 1/0, so tuple lookup treats
# them identically — exactly like the former per-bit ``bit << i`` packing.
_BYTE_OF_BITS: Dict[Tuple[int, ...], int] = {
    bits: value for value, bits in enumerate(_BITS_OF_BYTE)
}


@dataclass
class ScanCell:
    """One state element on a chain.

    ``path`` is the hierarchical name shown in the GUI's location tree
    (Figure 6), e.g. ``cpu.regfile.r3`` or ``dcache.line2.word1``.
    """

    path: str
    width: int
    reader: Callable[[], int]
    writer: Optional[Callable[[int], None]] = None

    @property
    def read_only(self) -> bool:
        return self.writer is None


@dataclass
class _CellSlot:
    cell: ScanCell
    offset: int


class ScanChain:
    """An ordered chain of scan cells with serialized read/write access."""

    def __init__(self, name: str, cells: List[ScanCell]):
        self.name = name
        self._slots: List[_CellSlot] = []
        self._by_path: Dict[str, _CellSlot] = {}
        offset = 0
        for cell in cells:
            if cell.path in self._by_path:
                raise TargetError(f"duplicate scan cell path {cell.path!r}")
            slot = _CellSlot(cell=cell, offset=offset)
            self._slots.append(slot)
            self._by_path[cell.path] = slot
            offset += cell.width
        self.total_bits = offset
        self.reads = 0
        self.writes = 0

    # -- serialized access (what the TAP port really provides) ---------------

    @property
    def shift_cycles(self) -> int:
        """Clock cycles needed to shift the full chain in or out."""
        return self.total_bits

    def read(self) -> List[int]:
        """Shift out the full chain as a bit list (chain order, LSB-first
        within each cell). Cells expand eight bits per table access."""
        self.reads += 1
        bits: List[int] = []
        append = bits.append
        extend = bits.extend
        table = _BITS_OF_BYTE
        for slot in self._slots:
            cell = slot.cell
            value = cell.reader()
            width = cell.width
            if width == 1:
                if value >> 1:
                    raise ValueError(f"value {value:#x} does not fit in 1 bits")
                append(value)
                continue
            if value < 0 or value >> width:
                raise ValueError(
                    f"value {value:#x} does not fit in {width} bits"
                )
            while width >= 8:
                extend(table[value & 0xFF])
                value >>= 8
                width -= 8
            if width:
                extend(table[value][:width])
        return bits

    def write(self, bits: List[int]) -> None:
        """Shift in a full chain image.

        Read-only cells ignore their bits, exactly as capture-only cells
        do in real scan logic. Cells whose value is unchanged are not
        re-written: a read-modify-write of the whole chain (the SCIFI
        injection pattern) must be state-preserving everywhere except the
        flipped bits — in particular it must not mark the IR latch as
        forced when the IR bits were not touched.
        """
        if len(bits) != self.total_bits:
            raise TargetError(
                f"chain {self.name!r} expects {self.total_bits} bits, "
                f"got {len(bits)}"
            )
        self.writes += 1
        table = _BYTE_OF_BITS
        for slot in self._slots:
            cell = slot.cell
            if cell.writer is None:
                continue
            width = cell.width
            pos = slot.offset
            if width == 1:
                bit = bits[pos]
                if bit not in (0, 1):
                    raise ValueError(f"bit {pos} must be 0 or 1, got {bit}")
                value = bit & 1
            else:
                end = pos + width
                value = 0
                shift = 0
                try:
                    while width >= 8:
                        value |= table[tuple(bits[pos : pos + 8])] << shift
                        pos += 8
                        shift += 8
                        width -= 8
                    if width:
                        residual = tuple(bits[pos:end]) + (0,) * (8 - width)
                        value |= table[residual] << shift
                except KeyError:
                    raise ValueError(
                        f"chain {self.name!r}: non-binary bits for cell "
                        f"{cell.path!r}"
                    ) from None
            if value != cell.reader():
                cell.writer(value)

    # -- checkpoint support ---------------------------------------------------

    def capture_values(self) -> List[Tuple[str, int]]:
        """Raw ``(path, value)`` pairs of every cell, **without** shift
        accounting — host-side bookkeeping, not a TAP access, so it must
        not perturb the scan cycle counters the E1/E2 benchmarks
        measure."""
        return [(slot.cell.path, slot.cell.reader()) for slot in self._slots]

    def capture_words(self) -> array:
        """Raw cell values in chain order as a contiguous ``array('Q')``,
        **without** shift accounting. Golden-run checkpointing hashes the
        buffer (``tobytes``) directly instead of walking per-cell
        ``(path, value)`` tuples; the cell order and paths are structural
        (fixed per target build), so the values alone identify the
        chain-visible state."""
        return array("Q", [slot.cell.reader() for slot in self._slots])

    # -- structural queries (used by campaign set-up and the GUI) -------------

    def cells(self) -> List[ScanCell]:
        return [slot.cell for slot in self._slots]

    def cell(self, path: str) -> ScanCell:
        slot = self._by_path.get(path)
        if slot is None:
            raise TargetError(f"no scan cell {path!r} on chain {self.name!r}")
        return slot.cell

    def has_cell(self, path: str) -> bool:
        return path in self._by_path

    def bit_offset(self, path: str, bit: int) -> int:
        """Global chain-bit position of ``bit`` within cell ``path``."""
        slot = self._by_path.get(path)
        if slot is None:
            raise TargetError(f"no scan cell {path!r} on chain {self.name!r}")
        if not 0 <= bit < slot.cell.width:
            raise TargetError(
                f"bit {bit} out of range for cell {path!r} "
                f"(width {slot.cell.width})"
            )
        return slot.offset + bit

    def locate(self, global_bit: int) -> Tuple[str, int]:
        """Inverse of :meth:`bit_offset`: map a chain bit to (path, bit)."""
        if not 0 <= global_bit < self.total_bits:
            raise TargetError(f"chain bit {global_bit} out of range")
        for slot in self._slots:
            if slot.offset <= global_bit < slot.offset + slot.cell.width:
                return slot.cell.path, global_bit - slot.offset
        raise TargetError(f"chain bit {global_bit} unmapped")  # pragma: no cover

    def describe(self) -> List[Dict[str, object]]:
        """Structural description for the configuration window (Figure 5)
        and the TargetSystemData database table."""
        return [
            {
                "path": slot.cell.path,
                "offset": slot.offset,
                "width": slot.cell.width,
                "read_only": slot.cell.read_only,
            }
            for slot in self._slots
        ]


# ---------------------------------------------------------------------------
# THOR-lite chain factory
# ---------------------------------------------------------------------------


def _register_cells(cpu: Cpu) -> List[ScanCell]:
    cells = []
    for i in range(16):
        cells.append(
            ScanCell(
                path=f"cpu.regfile.r{i}",
                width=32,
                reader=(lambda i=i: cpu.regs.read(i)),
                writer=(lambda v, i=i: cpu.regs.write(i, v)),
            )
        )
    return cells


def _cache_cells(cpu: Cpu, which: str) -> List[ScanCell]:
    # Cells index through the cache object on every access because
    # cache.reset() (run at the start of each experiment) replaces the
    # CacheLine instances.
    cache = cpu.icache if which == "icache" else cpu.dcache
    cells: List[ScanCell] = []
    for index in range(cache.n_lines):
        prefix = f"{which}.line{index}"
        cells.append(
            ScanCell(
                path=f"{prefix}.valid",
                width=1,
                reader=(lambda c=cache, i=index: int(c.lines[i].valid)),
                writer=(
                    lambda v, c=cache, i=index: setattr(c.lines[i], "valid", bool(v))
                ),
            )
        )
        cells.append(
            ScanCell(
                path=f"{prefix}.tag",
                width=cache.tag_bits,
                reader=(lambda c=cache, i=index: c.lines[i].tag),
                writer=(lambda v, c=cache, i=index: setattr(c.lines[i], "tag", v)),
            )
        )
        cells.append(
            ScanCell(
                path=f"{prefix}.tag_parity",
                width=1,
                reader=(lambda c=cache, i=index: c.lines[i].tag_parity),
                writer=(
                    lambda v, c=cache, i=index: setattr(c.lines[i], "tag_parity", v)
                ),
            )
        )
        for w in range(cache.words_per_line):
            cells.append(
                ScanCell(
                    path=f"{prefix}.word{w}",
                    width=32,
                    reader=(lambda c=cache, i=index, w=w: c.lines[i].data[w]),
                    writer=(
                        lambda v, c=cache, i=index, w=w: c.lines[i].data.__setitem__(
                            w, v
                        )
                    ),
                )
            )
            cells.append(
                ScanCell(
                    path=f"{prefix}.parity{w}",
                    width=1,
                    reader=(lambda c=cache, i=index, w=w: c.lines[i].data_parity[w]),
                    writer=(
                        lambda v, c=cache, i=index, w=w: c.lines[
                            i
                        ].data_parity.__setitem__(w, v)
                    ),
                )
            )
    return cells


def build_internal_chain(cpu: Cpu) -> ScanChain:
    """Internal scan chain: PC, PSR, register file, pipeline latches and
    both cache arrays, plus read-only counters and trap status."""
    addr_bits = cpu.config.address_bits
    cells: List[ScanCell] = [
        ScanCell(
            path="cpu.pc",
            width=addr_bits,
            reader=(lambda: cpu.pc & ((1 << addr_bits) - 1)),
            writer=(lambda v: setattr(cpu, "pc", v)),
        ),
        ScanCell(
            path="cpu.psr",
            width=cpu.psr.WIDTH,
            reader=cpu.psr.to_word,
            writer=cpu.psr.from_word,
        ),
    ]
    cells.extend(_register_cells(cpu))
    cells.extend(
        [
            ScanCell(
                path="cpu.pipeline.ir",
                width=32,
                reader=(lambda: cpu.pipeline.ir),
                writer=cpu.pipeline.force_ir,
            ),
            ScanCell(
                path="cpu.pipeline.mar",
                width=32,
                reader=(lambda: cpu.pipeline.mar),
                writer=(lambda v: setattr(cpu.pipeline, "mar", v)),
            ),
            ScanCell(
                path="cpu.pipeline.mdr",
                width=32,
                reader=(lambda: cpu.pipeline.mdr),
                writer=(lambda v: setattr(cpu.pipeline, "mdr", v)),
            ),
        ]
    )
    cells.extend(_cache_cells(cpu, "icache"))
    cells.extend(_cache_cells(cpu, "dcache"))
    # Observation-only cells: counters and trap status.
    cells.extend(
        [
            ScanCell(
                path="cpu.cycle_counter",
                width=32,
                reader=(lambda: cpu.cycles & 0xFFFFFFFF),
            ),
            ScanCell(
                path="cpu.instret_counter",
                width=32,
                reader=(lambda: cpu.instret & 0xFFFFFFFF),
            ),
            ScanCell(
                path="cpu.trap_status",
                width=8,
                reader=(
                    lambda: 0
                    if cpu.trap_event is None
                    else _TRAP_CODES[cpu.trap_event.trap]
                ),
            ),
        ]
    )
    return ScanChain("internal", cells)


def build_boundary_chain(cpu: Cpu) -> ScanChain:
    """Boundary scan chain: the chip's pins.

    The address/data bus pads mirror the MAR/MDR latches (that is where
    the pads are driven from); writing the data-bus cell forces the latch,
    modelling pin-level injection through boundary scan. Control pins are
    capture-only.
    """
    addr_bits = cpu.config.address_bits
    cells = [
        ScanCell(
            path="pins.addr_bus",
            width=addr_bits,
            reader=(lambda: cpu.pipeline.mar & ((1 << addr_bits) - 1)),
            writer=(lambda v: setattr(cpu.pipeline, "mar", v)),
        ),
        ScanCell(
            path="pins.data_bus",
            width=32,
            reader=(lambda: cpu.pipeline.mdr),
            writer=(lambda v: setattr(cpu.pipeline, "mdr", v)),
        ),
        ScanCell(path="pins.halt", width=1, reader=(lambda: int(cpu.halted))),
        ScanCell(
            path="pins.sync_count",
            width=16,
            reader=(lambda: cpu.iterations & 0xFFFF),
        ),
        # EXTEST-style pin forcing: writing these cells arms the data-bus
        # pads to force the masked lines for the next N read transactions
        # (the pin-level fault-injection technique uses them).
        ScanCell(
            path="pins.force_mask",
            width=32,
            reader=(lambda: cpu.bus.force_mask),
            writer=(lambda v: setattr(cpu.bus, "force_mask", v)),
        ),
        ScanCell(
            path="pins.force_value",
            width=32,
            reader=(lambda: cpu.bus.force_value),
            writer=(lambda v: setattr(cpu.bus, "force_value", v)),
        ),
        ScanCell(
            path="pins.force_reads",
            width=8,
            reader=(lambda: min(cpu.bus.force_reads, 0xFF)),
            writer=(lambda v: setattr(cpu.bus, "force_reads", v)),
        ),
    ]
    return ScanChain("boundary", cells)


def build_scan_chains(cpu: Cpu) -> Dict[str, ScanChain]:
    return {
        "internal": build_internal_chain(cpu),
        "boundary": build_boundary_chain(cpu),
    }
