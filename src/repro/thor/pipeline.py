"""Pipeline latches exposed on the internal scan chain.

A real pipelined CPU holds in-flight state in latches between stages; the
Thor RD scan chains expose many of them. THOR-lite models the three that
dominate fault-injection behaviour:

* ``ir``  — instruction register: the last fetched instruction word. A
  scan-chain write to IR marks it *forced*; the next step executes the
  forced word instead of fetching, modelling a flip caught in the fetch
  latch. This makes IR a *live* location (injections are frequently
  effective).
* ``mar`` — memory address register: address of the last memory
  transaction. Overwritten by the next transaction, so injections here are
  usually non-effective — exactly the behaviour the Overwritten outcome
  class describes.
* ``mdr`` — memory data register: data of the last memory transaction,
  same overwrite behaviour as MAR.
"""

from __future__ import annotations

from typing import Tuple

from repro.thor.isa import WORD_MASK


class PipelineLatches:
    def __init__(self) -> None:
        self.ir = 0
        self.mar = 0
        self.mdr = 0
        self.ir_forced = False

    def reset(self) -> None:
        self.ir = 0
        self.mar = 0
        self.mdr = 0
        self.ir_forced = False

    def latch_fetch(self, word: int) -> None:
        self.ir = word & WORD_MASK
        self.ir_forced = False

    def force_ir(self, word: int) -> None:
        """Scan-chain write path: the next step consumes this word."""
        self.ir = word & WORD_MASK
        self.ir_forced = True

    def consume_forced_ir(self) -> int:
        self.ir_forced = False
        return self.ir

    def latch_memory(self, address: int, data: int) -> None:
        self.mar = address & WORD_MASK
        self.mdr = data & WORD_MASK

    # -- checkpoint support ------------------------------------------------

    def snapshot(self) -> Tuple[int, int, int, bool]:
        return (self.ir, self.mar, self.mdr, self.ir_forced)

    def restore(self, state: Tuple[int, int, int, bool]) -> None:
        self.ir, self.mar, self.mdr, forced = state
        self.ir_forced = bool(forced)
