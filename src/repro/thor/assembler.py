"""Two-pass assembler for THOR-lite workloads.

Syntax::

    ; comment (also '#')
    .equ  LIMIT 100        ; symbolic constant
    .org  0x100            ; set location counter
    start:                 ; label
        ldi   r1, LIMIT
        ldi   r2, buffer   ; labels are word addresses
        ld    r3, [r2+1]
        st    r3, [r2-1]
        addi  r3, r3, -1
        cmpi  r3, 0
        bne   start        ; branches take label operands (PC-relative)
        li    r4, 0x12345678  ; pseudo: expands to LUI+ORI when needed
        call  subroutine
        halt
    buffer:
        .word 1, 2, 0xff   ; data words
        .space 8           ; zero-filled words

Registers are ``r0``..``r15`` with aliases ``sp`` (r14) and ``lr`` (r15).
The assembler records which words are code and which are data so the
pre-runtime SWIFI technique can target "program area" and "data area"
separately, exactly as the paper describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.thor import isa
from repro.thor.isa import Instruction, Opcode
from repro.util.errors import AssemblerError

_REG_ALIASES = {"sp": isa.REG_SP, "lr": isa.REG_LR}

# Pseudo-instruction expansion may grow; 'li' is 1 or 2 words.
_R3 = {  # op rd, rs1, rs2
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "div": Opcode.DIV,
    "mod": Opcode.MOD,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
    "sra": Opcode.SRA,
}
_R2 = {  # op rd, rs1
    "not": Opcode.NOT,
    "mov": Opcode.MOV,
}
_I3 = {  # op rd, rs1, imm
    "addi": Opcode.ADDI,
    "subi": Opcode.SUBI,
    "muli": Opcode.MULI,
    "andi": Opcode.ANDI,
    "ori": Opcode.ORI,
    "xori": Opcode.XORI,
    "shli": Opcode.SHLI,
    "shri": Opcode.SHRI,
}
_BRANCHES = {
    "beq": Opcode.BEQ,
    "bne": Opcode.BNE,
    "blt": Opcode.BLT,
    "bge": Opcode.BGE,
    "bgt": Opcode.BGT,
    "ble": Opcode.BLE,
}
_NO_OPERAND = {
    "nop": Opcode.NOP,
    "halt": Opcode.HALT,
    "ret": Opcode.RET,
    "sync": Opcode.SYNC,
}

_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\w+)\s*)?\]$")


@dataclass
class Program:
    """An assembled workload image.

    ``words`` maps word address → 32-bit value. ``kinds`` maps address →
    ``"code"`` or ``"data"``. ``symbols`` is the label table. ``source``
    maps address → (line number, source text) for diagnostics.
    """

    words: Dict[int, int] = field(default_factory=dict)
    kinds: Dict[int, str] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    source: Dict[int, Tuple[int, str]] = field(default_factory=dict)
    entry: int = 0

    def code_addresses(self) -> List[int]:
        return sorted(a for a, k in self.kinds.items() if k == "code")

    def data_addresses(self) -> List[int]:
        return sorted(a for a, k in self.kinds.items() if k == "data")

    def extent(self) -> Tuple[int, int]:
        """Lowest and highest occupied word address (inclusive)."""
        if not self.words:
            return (0, 0)
        addrs = self.words.keys()
        return (min(addrs), max(addrs))


@dataclass
class _Line:
    number: int
    text: str
    label: Optional[str]
    mnemonic: Optional[str]
    operands: List[str]


def _strip_comment(text: str) -> str:
    for marker in (";", "#"):
        pos = text.find(marker)
        if pos >= 0:
            text = text[:pos]
    return text.strip()


def _split_operands(rest: str) -> List[str]:
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _parse_lines(text: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw)
        if not stripped:
            continue
        label = None
        if ":" in stripped:
            head, _, tail = stripped.partition(":")
            head = head.strip()
            if not re.fullmatch(r"[A-Za-z_]\w*", head):
                raise AssemblerError(f"invalid label {head!r}", number)
            label = head
            stripped = tail.strip()
        mnemonic = None
        operands: List[str] = []
        if stripped:
            parts = stripped.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1] if len(parts) > 1 else "")
        lines.append(_Line(number, raw.strip(), label, mnemonic, operands))
    return lines


class _Assembler:
    def __init__(self, text: str, origin: int):
        self.lines = _parse_lines(text)
        self.origin = origin
        self.symbols: Dict[str, int] = {}
        self.constants: Dict[str, int] = {}

    # -- operand parsing --------------------------------------------------

    def _reg(self, token: str, line: int) -> int:
        token = token.lower()
        if token in _REG_ALIASES:
            return _REG_ALIASES[token]
        m = re.fullmatch(r"r(\d{1,2})", token)
        if m:
            index = int(m.group(1))
            if 0 <= index < isa.NUM_REGISTERS:
                return index
        raise AssemblerError(f"unknown register {token!r}", line)

    def _value(self, token: str, line: int) -> int:
        token = token.strip()
        neg = False
        if token.startswith("-"):
            neg = True
            token = token[1:].strip()
        if re.fullmatch(r"0[xX][0-9a-fA-F]+", token):
            value = int(token, 16)
        elif re.fullmatch(r"0[bB][01]+", token):
            value = int(token, 2)
        elif re.fullmatch(r"\d+", token):
            value = int(token, 10)
        elif token in self.constants:
            value = self.constants[token]
        elif token in self.symbols:
            value = self.symbols[token]
        else:
            raise AssemblerError(f"undefined symbol {token!r}", line)
        return -value if neg else value

    # -- sizing (pass 1) ---------------------------------------------------

    def _instruction_size(self, ln: _Line) -> int:
        mnemonic = ln.mnemonic
        if mnemonic == ".word":
            return len(ln.operands)
        if mnemonic == ".space":
            # .space size must be a literal or .equ constant; labels are
            # not yet resolved during sizing.
            return self._value(ln.operands[0], ln.number)
        if mnemonic == "li":
            # Conservatively reserve 2 words; pass 2 pads with NOP when
            # the constant fits in one LDI.
            return 2
        return 1

    # -- encoding (pass 2) -------------------------------------------------

    def _encode(self, ln: _Line, pc: int) -> List[Instruction]:
        m = ln.mnemonic
        ops = ln.operands
        n = ln.number

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{m} expects {count} operand(s), got {len(ops)}", n
                )

        if m in _NO_OPERAND:
            need(0)
            return [Instruction(_NO_OPERAND[m])]
        if m in _R3:
            need(3)
            return [
                Instruction(
                    _R3[m],
                    rd=self._reg(ops[0], n),
                    rs1=self._reg(ops[1], n),
                    rs2=self._reg(ops[2], n),
                )
            ]
        if m in _R2:
            need(2)
            return [
                Instruction(
                    _R2[m], rd=self._reg(ops[0], n), rs1=self._reg(ops[1], n)
                )
            ]
        if m in _I3:
            need(3)
            return [
                Instruction(
                    _I3[m],
                    rd=self._reg(ops[0], n),
                    rs1=self._reg(ops[1], n),
                    imm=self._value(ops[2], n),
                )
            ]
        if m == "cmp":
            need(2)
            return [
                Instruction(
                    Opcode.CMP, rs1=self._reg(ops[0], n), rs2=self._reg(ops[1], n)
                )
            ]
        if m == "cmpi":
            need(2)
            return [
                Instruction(
                    Opcode.CMPI, rs1=self._reg(ops[0], n), imm=self._value(ops[1], n)
                )
            ]
        if m == "ldi":
            need(2)
            return [
                Instruction(
                    Opcode.LDI, rd=self._reg(ops[0], n), imm=self._value(ops[1], n)
                )
            ]
        if m == "lui":
            need(2)
            return [
                Instruction(
                    Opcode.LUI, rd=self._reg(ops[0], n), imm=self._value(ops[1], n)
                )
            ]
        if m == "li":
            need(2)
            rd = self._reg(ops[0], n)
            value = self._value(ops[1], n) & isa.WORD_MASK
            if value <= isa.IMM_MAX:
                return [Instruction(Opcode.LDI, rd=rd, imm=value), Instruction(Opcode.NOP)]
            high = (value >> 14) & isa.IMM_MASK
            low = value & 0x3FFF
            return [
                Instruction(Opcode.LUI, rd=rd, imm=high),
                Instruction(Opcode.ORI, rd=rd, rs1=rd, imm=low),
            ]
        if m in ("ld", "st"):
            need(2)
            reg = self._reg(ops[0], n)
            mm = _MEM_RE.match(ops[1])
            if not mm:
                raise AssemblerError(f"bad memory operand {ops[1]!r}", n)
            base = self._reg(mm.group(1), n)
            offset = 0
            if mm.group(3) is not None:
                offset = self._value(mm.group(3), n)
                if mm.group(2) == "-":
                    offset = -offset
            opcode = Opcode.LD if m == "ld" else Opcode.ST
            return [Instruction(opcode, rd=reg, rs1=base, imm=offset)]
        if m in _BRANCHES:
            need(1)
            target = self._value(ops[0], n)
            return [Instruction(_BRANCHES[m], imm=target - (pc + 1))]
        if m == "jmp":
            need(1)
            return [Instruction(Opcode.JMP, imm=self._value(ops[0], n))]
        if m == "call":
            need(1)
            return [Instruction(Opcode.CALL, imm=self._value(ops[0], n))]
        if m == "jr":
            need(1)
            return [Instruction(Opcode.JR, rs1=self._reg(ops[0], n))]
        if m == "push":
            need(1)
            return [Instruction(Opcode.PUSH, rd=self._reg(ops[0], n))]
        if m == "pop":
            need(1)
            return [Instruction(Opcode.POP, rd=self._reg(ops[0], n))]
        if m == "trap":
            need(1)
            return [Instruction(Opcode.TRAP, imm=self._value(ops[0], n))]
        raise AssemblerError(f"unknown mnemonic {m!r}", n)

    # -- driver -------------------------------------------------------------

    def run(self) -> Program:
        # Pass 0: collect .equ constants (they may be used before defined
        # textually, but must not reference labels).
        for ln in self.lines:
            if ln.mnemonic == ".equ":
                if len(ln.operands) == 1:
                    parts = ln.operands[0].split()
                    if len(parts) != 2:
                        raise AssemblerError(".equ expects NAME VALUE", ln.number)
                    name, value_token = parts
                else:
                    if len(ln.operands) != 2:
                        raise AssemblerError(".equ expects NAME VALUE", ln.number)
                    name, value_token = ln.operands
                self.constants[name] = self._value(value_token, ln.number)

        # Pass 1: lay out addresses and define labels.
        pc = self.origin
        entry = None
        for ln in self.lines:
            if ln.mnemonic == ".org":
                pc = self._value(ln.operands[0], ln.number)
                continue
            if ln.label is not None:
                if ln.label in self.symbols:
                    raise AssemblerError(f"duplicate label {ln.label!r}", ln.number)
                self.symbols[ln.label] = pc
                if entry is None and ln.label in ("start", "main", "_start"):
                    entry = pc
            if ln.mnemonic is None or ln.mnemonic == ".equ":
                continue
            pc += self._instruction_size(ln)

        program = Program(entry=entry if entry is not None else self.origin)
        program.symbols = dict(self.symbols)

        # Pass 2: encode.
        pc = self.origin
        for ln in self.lines:
            if ln.mnemonic is None or ln.mnemonic == ".equ":
                continue
            if ln.mnemonic == ".org":
                pc = self._value(ln.operands[0], ln.number)
                continue
            if ln.mnemonic == ".word":
                for token in ln.operands:
                    self._emit(program, pc, self._value(token, ln.number) & isa.WORD_MASK,
                               "data", ln)
                    pc += 1
                continue
            if ln.mnemonic == ".space":
                count = self._value(ln.operands[0], ln.number)
                for _ in range(count):
                    self._emit(program, pc, 0, "data", ln)
                    pc += 1
                continue
            for instr in self._encode(ln, pc):
                self._emit(program, pc, isa.assemble_word(instr), "code", ln)
                pc += 1
        return program

    @staticmethod
    def _emit(program: Program, addr: int, word: int, kind: str, ln: _Line) -> None:
        if addr in program.words:
            raise AssemblerError(f"address {addr:#x} assembled twice", ln.number)
        program.words[addr] = word
        program.kinds[addr] = kind
        program.source[addr] = (ln.number, ln.text)


def assemble(text: str, origin: int = 0x100) -> Program:
    """Assemble ``text`` into a :class:`Program` image.

    The default origin 0x100 leaves the low page free, matching the memory
    map in :mod:`repro.thor.memory`.
    """
    return _Assembler(text, origin).run()
