"""THOR-lite instruction set architecture.

A 32-bit load/store ISA, deliberately small but complete enough that
injected bit flips behave realistically:

* flipping opcode bits can produce *illegal opcodes* (detected by the
  decoder EDM) or silently mutate one instruction into another,
* flipping register-field bits redirects data flow,
* flipping immediate bits corrupts addresses and constants.

Encoding (one 32-bit word per instruction, word-addressed memory)::

    31        26 25  22 21  18 17  14 13         0
    +-----------+------+------+------+------------+
    |  opcode   |  rd  | rs1  | rs2  |  (unused)  |   R-type
    +-----------+------+------+------+------------+
    |  opcode   |  rd  | rs1  |      imm18        |   I-type
    +-----------+------+------+-------------------+

``imm18`` is an 18-bit two's-complement immediate for arithmetic and
PC-relative branches, and an 18-bit unsigned absolute address for
JMP/CALL (covers the full 64 Ki-word address space).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.util.bits import sign_extend

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
NUM_REGISTERS = 16
IMM_BITS = 18
IMM_MASK = (1 << IMM_BITS) - 1
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1

# Register conventions used by the assembler and the ABI of the workload
# library (the hardware does not enforce them).
REG_SP = 14  # stack pointer
REG_LR = 15  # link register written by CALL


class Opcode(enum.IntEnum):
    """All legal THOR-lite opcodes. Any other 6-bit value is illegal."""

    # R-type ------------------------------------------------------------
    NOP = 0x00
    HALT = 0x01
    ADD = 0x02
    SUB = 0x03
    MUL = 0x04
    DIV = 0x05
    MOD = 0x06
    AND = 0x07
    OR = 0x08
    XOR = 0x09
    SHL = 0x0A
    SHR = 0x0B
    SRA = 0x0C
    NOT = 0x0D
    MOV = 0x0E
    CMP = 0x0F
    JR = 0x10
    RET = 0x11
    PUSH = 0x12
    POP = 0x13
    SYNC = 0x14
    # I-type ------------------------------------------------------------
    ADDI = 0x20
    SUBI = 0x21
    MULI = 0x22
    ANDI = 0x23
    ORI = 0x24
    XORI = 0x25
    SHLI = 0x26
    SHRI = 0x27
    LDI = 0x28
    LUI = 0x29
    LD = 0x2A
    ST = 0x2B
    CMPI = 0x2C
    JMP = 0x2D
    BEQ = 0x2E
    BNE = 0x2F
    BLT = 0x30
    BGE = 0x31
    BGT = 0x32
    BLE = 0x33
    CALL = 0x34
    TRAP = 0x35


R_TYPE = frozenset(
    {
        Opcode.NOP,
        Opcode.HALT,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SRA,
        Opcode.NOT,
        Opcode.MOV,
        Opcode.CMP,
        Opcode.JR,
        Opcode.RET,
        Opcode.PUSH,
        Opcode.POP,
        Opcode.SYNC,
    }
)

I_TYPE = frozenset(op for op in Opcode if op not in R_TYPE)

# Opcodes whose immediate field is unsigned: absolute word addresses
# (JMP/CALL), trap codes, and LUI's raw high-half bit pattern.
ABSOLUTE_IMM = frozenset({Opcode.JMP, Opcode.CALL, Opcode.TRAP, Opcode.LUI})

# Conditional branches: immediate is PC-relative (target = PC + 1 + imm).
BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BGT, Opcode.BLE}
)

_VALID_OPCODES: Dict[int, Opcode] = {int(op): op for op in Opcode}

# Per-instruction base cycle cost. Cache misses and taken branches add to
# this in the CPU model.
CYCLE_COST: Dict[Opcode, int] = {op: 1 for op in Opcode}
CYCLE_COST[Opcode.MUL] = 4
CYCLE_COST[Opcode.MULI] = 4
CYCLE_COST[Opcode.DIV] = 8
CYCLE_COST[Opcode.MOD] = 8


# ---------------------------------------------------------------------------
# Per-opcode operand semantics
# ---------------------------------------------------------------------------

# Register *roles* an instruction reads or writes. A role names an encoding
# field ("rd", "rs1", "rs2") or an implicit architectural register ("sp",
# "lr"); :func:`repro.thor.effects.register_effects` resolves roles to
# concrete register indices for a decoded instruction.
ROLE_RD = "rd"
ROLE_RS1 = "rs1"
ROLE_RS2 = "rs2"
ROLE_SP = "sp"
ROLE_LR = "lr"

# Control-flow classes (consumed by the static CFG builder):
FLOW_NEXT = "next"  # falls through to PC + 1
FLOW_HALT = "halt"  # terminates the workload normally
FLOW_BRANCH = "branch"  # conditional, PC-relative target (imm)
FLOW_JUMP = "jump"  # unconditional, absolute target (imm)
FLOW_CALL = "call"  # absolute target (imm), LR := PC + 1
FLOW_RETURN = "return"  # indirect through LR
FLOW_INDIRECT = "indirect"  # indirect through a general register (JR)
FLOW_TRAP = "trap"  # raises a software trap (halts the experiment)

# Memory-access classes:
MEM_NONE = ""
MEM_LOAD = "load"
MEM_STORE = "store"


@dataclass(frozen=True)
class OperandSemantics:
    """Operand/dataflow semantics of one opcode.

    The single shared description of what each instruction *means* at the
    architectural level: which register roles it reads and writes, whether
    it produces or consumes the PSR flags, how it transfers control, and
    whether it touches memory. The disassembler
    (:mod:`repro.thor.disasm`), the dynamic-effect extractor
    (:mod:`repro.thor.effects`) and the static program analysis
    (:mod:`repro.staticanalysis`) all derive their per-opcode behaviour
    from this table instead of keeping ad-hoc opcode sets in sync.
    """

    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    reads_flags: bool = False
    writes_flags: bool = False
    flow: str = FLOW_NEXT
    mem: str = MEM_NONE
    # Disassembly operand format (see repro.thor.disasm):
    #   "none" | "r3" | "r2" | "i3" | "mem" | "branch" | "jumpabs"
    #   | "trap" | "jr" | "stack" | "cmp" | "cmpi" | "imm"
    fmt: str = "none"

    @property
    def is_control_flow(self) -> bool:
        return self.flow not in (FLOW_NEXT,)

    @property
    def is_exit(self) -> bool:
        return self.flow in (FLOW_HALT, FLOW_TRAP)


def _alu_r3() -> OperandSemantics:
    return OperandSemantics(
        reads=(ROLE_RS1, ROLE_RS2), writes=(ROLE_RD,), writes_flags=True,
        fmt="r3",
    )


def _alu_i3() -> OperandSemantics:
    return OperandSemantics(
        reads=(ROLE_RS1,), writes=(ROLE_RD,), writes_flags=True, fmt="i3"
    )


def _branch() -> OperandSemantics:
    return OperandSemantics(reads_flags=True, flow=FLOW_BRANCH, fmt="branch")


SEMANTICS: Dict[Opcode, OperandSemantics] = {
    Opcode.NOP: OperandSemantics(),
    Opcode.HALT: OperandSemantics(flow=FLOW_HALT),
    Opcode.ADD: _alu_r3(),
    Opcode.SUB: _alu_r3(),
    Opcode.MUL: _alu_r3(),
    Opcode.DIV: _alu_r3(),
    Opcode.MOD: _alu_r3(),
    Opcode.AND: _alu_r3(),
    Opcode.OR: _alu_r3(),
    Opcode.XOR: _alu_r3(),
    Opcode.SHL: _alu_r3(),
    Opcode.SHR: _alu_r3(),
    Opcode.SRA: _alu_r3(),
    Opcode.NOT: OperandSemantics(
        reads=(ROLE_RS1,), writes=(ROLE_RD,), writes_flags=True, fmt="r2"
    ),
    Opcode.MOV: OperandSemantics(
        reads=(ROLE_RS1,), writes=(ROLE_RD,), writes_flags=True, fmt="r2"
    ),
    Opcode.CMP: OperandSemantics(
        reads=(ROLE_RS1, ROLE_RS2), writes_flags=True, fmt="cmp"
    ),
    Opcode.JR: OperandSemantics(
        reads=(ROLE_RS1,), flow=FLOW_INDIRECT, fmt="jr"
    ),
    Opcode.RET: OperandSemantics(reads=(ROLE_LR,), flow=FLOW_RETURN),
    Opcode.PUSH: OperandSemantics(
        reads=(ROLE_RD, ROLE_SP), writes=(ROLE_SP,), mem=MEM_STORE,
        fmt="stack",
    ),
    Opcode.POP: OperandSemantics(
        reads=(ROLE_SP,), writes=(ROLE_RD, ROLE_SP), mem=MEM_LOAD,
        fmt="stack",
    ),
    Opcode.SYNC: OperandSemantics(),
    Opcode.ADDI: _alu_i3(),
    Opcode.SUBI: _alu_i3(),
    Opcode.MULI: _alu_i3(),
    Opcode.ANDI: _alu_i3(),
    Opcode.ORI: _alu_i3(),
    Opcode.XORI: _alu_i3(),
    Opcode.SHLI: _alu_i3(),
    Opcode.SHRI: _alu_i3(),
    Opcode.LDI: OperandSemantics(writes=(ROLE_RD,), fmt="imm"),
    Opcode.LUI: OperandSemantics(writes=(ROLE_RD,), fmt="imm"),
    Opcode.LD: OperandSemantics(
        reads=(ROLE_RS1,), writes=(ROLE_RD,), mem=MEM_LOAD, fmt="mem"
    ),
    Opcode.ST: OperandSemantics(
        reads=(ROLE_RS1, ROLE_RD), mem=MEM_STORE, fmt="mem"
    ),
    Opcode.CMPI: OperandSemantics(
        reads=(ROLE_RS1,), writes_flags=True, fmt="cmpi"
    ),
    Opcode.JMP: OperandSemantics(flow=FLOW_JUMP, fmt="jumpabs"),
    Opcode.BEQ: _branch(),
    Opcode.BNE: _branch(),
    Opcode.BLT: _branch(),
    Opcode.BGE: _branch(),
    Opcode.BGT: _branch(),
    Opcode.BLE: _branch(),
    Opcode.CALL: OperandSemantics(
        writes=(ROLE_LR,), flow=FLOW_CALL, fmt="jumpabs"
    ),
    Opcode.TRAP: OperandSemantics(flow=FLOW_TRAP, fmt="trap"),
}

assert set(SEMANTICS) == set(Opcode), "SEMANTICS must cover every opcode"


def semantics(opcode: Opcode) -> OperandSemantics:
    """The operand semantics of ``opcode``."""
    return SEMANTICS[opcode]


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``imm`` is already sign-extended for signed immediates and left
    unsigned for absolute addresses (JMP/CALL/TRAP).
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def is_i_type(self) -> bool:
        return self.opcode in I_TYPE


class IllegalOpcode(ValueError):
    """Raised by :func:`decode` for an unknown opcode field.

    The CPU catches this and raises the ILLEGAL_OPCODE trap — this is one
    of the target's error-detection mechanisms, so a bit flip that lands in
    the opcode field is frequently *detected* rather than activated.
    """

    def __init__(self, word: int):
        self.word = word
        super().__init__(f"illegal opcode in instruction word {word:#010x}")


def assemble_word(instr: Instruction) -> int:
    """Encode a decoded instruction back into its 32-bit word."""
    op = instr.opcode
    if not 0 <= instr.rd < NUM_REGISTERS:
        raise ValueError(f"rd out of range: {instr.rd}")
    if not 0 <= instr.rs1 < NUM_REGISTERS:
        raise ValueError(f"rs1 out of range: {instr.rs1}")
    word = (int(op) << 26) | (instr.rd << 22) | (instr.rs1 << 18)
    if op in R_TYPE:
        if not 0 <= instr.rs2 < NUM_REGISTERS:
            raise ValueError(f"rs2 out of range: {instr.rs2}")
        word |= instr.rs2 << 14
    else:
        imm = instr.imm
        if op in ABSOLUTE_IMM:
            if not 0 <= imm <= IMM_MASK:
                raise ValueError(f"absolute immediate out of range: {imm}")
        else:
            if not IMM_MIN <= imm <= IMM_MAX:
                raise ValueError(f"signed immediate out of range: {imm}")
        word |= imm & IMM_MASK
    return word & WORD_MASK


#: Shared decode memo: instruction word -> frozen :class:`Instruction`.
#: Workload images are tiny (hundreds of distinct words) and campaigns
#: re-execute them millions of times, so decode hit rates are ~100%.
#: Illegal words are *never* inserted (they raise first), so the cache
#: cannot be poisoned by fault-injected garbage words; the size cap
#: bounds memory against adversarial word streams (every faulted word is
#: a potential new key) by dropping the whole memo and rebuilding.
_DECODE_CACHE: Dict[int, Instruction] = {}
_DECODE_CACHE_MAX = 1 << 16


def _decode_uncached(word: int) -> Instruction:
    op_field = (word >> 26) & 0x3F
    opcode = _VALID_OPCODES.get(op_field)
    if opcode is None:
        raise IllegalOpcode(word)
    rd = (word >> 22) & 0xF
    rs1 = (word >> 18) & 0xF
    if opcode in R_TYPE:
        rs2 = (word >> 14) & 0xF
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)
    raw_imm = word & IMM_MASK
    if opcode in ABSOLUTE_IMM:
        imm = raw_imm
    else:
        imm = sign_extend(raw_imm, IMM_BITS)
    return Instruction(opcode, rd=rd, rs1=rs1, imm=imm)


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word (memoized; the returned
    :class:`Instruction` is frozen and shared between callers).

    Raises :class:`IllegalOpcode` when the opcode field does not name a
    legal instruction.
    """
    word &= WORD_MASK
    instr = _DECODE_CACHE.get(word)
    if instr is None:
        instr = _decode_uncached(word)  # raises before caching
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[word] = instr
    return instr


def decode_cache_size() -> int:
    """Number of memoized decodes (test/diagnostic hook)."""
    return len(_DECODE_CACHE)


def decode_cache_clear() -> None:
    """Drop the decode memo (test hook; execution only gets slower)."""
    _DECODE_CACHE.clear()


def try_decode(word: int) -> Optional[Instruction]:
    """Decode, returning None instead of raising for illegal opcodes."""
    try:
        return decode(word)
    except IllegalOpcode:
        return None
