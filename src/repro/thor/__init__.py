"""THOR-lite: a simulated microprocessor substrate for fault injection.

The paper injects faults into a Thor RD — a radiation-hardened CPU with
parity-protected instruction and data caches and IEEE-1149.1 scan chains.
Neither the chip nor its test card is available, so this package provides a
from-scratch simulator with the properties fault injection actually needs:

* a real ISA executed instruction-by-instruction (``isa``, ``cpu``),
* an assembler for writing workloads (``assembler``),
* architectural state elements faults can land in — register file, PSR,
  PC, pipeline latches (``registers``, ``pipeline``),
* parity-protected I/D caches whose parity bits are genuine stored state
  (``cache``),
* error-detection mechanisms that fire on corrupted state (``traps``),
* boundary and internal scan chains giving serialized access to almost all
  state elements, with read-only cells (``scanchain``),
* a test card wrapping the chip with download, run-control, breakpoints and
  debug events (``testcard``).
"""

from repro.thor.isa import Instruction, Opcode, assemble_word, decode
from repro.thor.assembler import assemble
from repro.thor.cpu import Cpu, CpuConfig
from repro.thor.testcard import TestCard, DebugEvent, DebugEventKind

__all__ = [
    "Instruction",
    "Opcode",
    "assemble_word",
    "decode",
    "assemble",
    "Cpu",
    "CpuConfig",
    "TestCard",
    "DebugEvent",
    "DebugEventKind",
]
