"""Main memory of the THOR-lite target.

Memory is word-addressed (32-bit words). The default address space is
64 Ki words. Accesses outside the physical address space raise
:class:`IllegalAddress`, which the CPU converts into the ILLEGAL_ADDRESS
trap — one of the target's error-detection mechanisms. This matters for
fault injection: a bit flip in an address register frequently produces an
out-of-range access and is therefore *detected* rather than escaping.

Memory map convention used by the workload library (not enforced by
hardware except where noted)::

    0x0000 .. 0x00FF   reserved page (vectors / scratch)
    0x0100 .. ...      workload code + data (assembler default origin)
    ...    .. 0xEFFF   heap / stack (stack grows down from 0xF000)
    0xFF00 .. 0xFF3F   environment-simulator INPUT window (env -> target)
    0xFF40 .. 0xFF7F   environment-simulator OUTPUT window (target -> env)
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.thor.isa import WORD_MASK

DEFAULT_SIZE = 65536

#: Typecode of the contiguous word store. "I" is 32-bit on every current
#: CPython platform; fall back to "L" where it is not — values are always
#: masked to WORD_MASK before storage, so either code holds them.
WORD_TYPECODE = "I" if array("I").itemsize == 4 else "L"
#: Words per page for checkpoint dirty-page tracking (must match
#: repro.core.checkpoint.PAGE_WORDS; kept local so the simulator layer
#: stays import-independent of the algorithm layer).
PAGE_WORDS = 256
STACK_TOP = 0xF000
ENV_INPUT_BASE = 0xFF00
ENV_OUTPUT_BASE = 0xFF40
ENV_WINDOW_WORDS = 64


class IllegalAddress(Exception):
    """Access outside the physical address space."""

    def __init__(self, address: int, kind: str):
        self.address = address
        self.kind = kind
        super().__init__(f"illegal {kind} address {address:#x}")


class Memory:
    """Flat word-addressed RAM with bounds checking and write protection.

    The word store is a contiguous ``array`` rather than a Python list:
    page reads, page loads and checkpoint fingerprints then move whole
    buffers (``tobytes``/slice assignment) instead of walking per-word
    Python objects, and :meth:`nonzero_pages` reduces to byte compares.
    """

    def __init__(self, size: int = DEFAULT_SIZE):
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.size = size
        self._words: array = array(WORD_TYPECODE, (0,)) * size
        # Optional write-protected range [lo, hi] (inclusive), used to
        # protect the code image when the campaign asks for it.
        self._protected: Tuple[int, int] = (1, 0)  # empty
        # Dirty-page tracking for golden-run checkpointing: off by
        # default (zero overhead on the experiment hot path), enabled by
        # the port for the duration of the reference run.
        self._track_dirty = False
        self._dirty_pages: Set[int] = set()

    def reset(self) -> None:
        self._words = array(WORD_TYPECODE, (0,)) * self.size
        self._protected = (1, 0)
        self._dirty_pages.clear()

    def protect(self, lo: int, hi: int) -> None:
        """Write-protect the inclusive word range [lo, hi]."""
        self._protected = (lo, hi)

    def unprotect(self) -> None:
        self._protected = (1, 0)

    def read(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise IllegalAddress(address, "read")
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < self.size:
            raise IllegalAddress(address, "write")
        lo, hi = self._protected
        if lo <= address <= hi:
            raise IllegalAddress(address, "write-protected")
        self._words[address] = value & WORD_MASK
        if self._track_dirty:
            self._dirty_pages.add(address // PAGE_WORDS)

    # -- raw access for the test card / fault injectors -------------------
    # The test card's download port and the pre-runtime SWIFI injector
    # bypass protection: they model physical access to the RAM chips.

    def poke(self, address: int, value: int) -> None:
        if not 0 <= address < self.size:
            raise IllegalAddress(address, "poke")
        self._words[address] = value & WORD_MASK
        if self._track_dirty:
            self._dirty_pages.add(address // PAGE_WORDS)

    def peek(self, address: int) -> int:
        if not 0 <= address < self.size:
            raise IllegalAddress(address, "peek")
        return self._words[address]

    def load_image(self, image: Dict[int, int]) -> None:
        for address, value in image.items():
            self.poke(address, value)

    def dump(self, lo: int, hi: int) -> List[int]:
        """Words in [lo, hi) — used to build logged state vectors."""
        if not (0 <= lo <= hi <= self.size):
            raise IllegalAddress(hi, "dump")
        return self._words[lo:hi].tolist()

    def nonzero_addresses(self) -> Iterable[int]:
        """Addresses of non-zero words, ascending. Skips all-zero pages
        wholesale (byte compare) before touching individual words."""
        return self._iter_nonzero()

    def _iter_nonzero(self) -> Iterator[int]:
        words = self._words
        for page in sorted(self.nonzero_pages()):
            base = page * PAGE_WORDS
            limit = min(base + PAGE_WORDS, self.size)
            for address in range(base, limit):
                if words[address]:
                    yield address

    # -- checkpoint support (golden-run warm starts) ----------------------

    @property
    def n_pages(self) -> int:
        return (self.size + PAGE_WORDS - 1) // PAGE_WORDS

    def protected_range(self) -> Tuple[int, int]:
        """The current write-protect range (empty = (1, 0)); part of the
        checkpoint payload because :meth:`reset` clears protection."""
        return self._protected

    def start_dirty_tracking(self) -> None:
        """Begin recording which pages are written (via :meth:`write`
        and :meth:`poke`); the tracked set seeds checkpoint deltas."""
        self._track_dirty = True
        self._dirty_pages = set()

    def stop_dirty_tracking(self) -> None:
        self._track_dirty = False
        self._dirty_pages = set()

    def drain_dirty_pages(self) -> Set[int]:
        """Pages written since the previous drain; clears the set."""
        dirty = self._dirty_pages
        self._dirty_pages = set()
        return dirty

    def nonzero_pages(self) -> Set[int]:
        """Pages holding at least one non-zero word — the first
        checkpoint's page set (everything downloaded since reset).

        One ``tobytes`` of the whole store plus a memcmp-speed slice
        compare per page, instead of the former O(memory_size) per-word
        Python scan (:meth:`_nonzero_pages_reference`, kept as the
        regression-test oracle)."""
        raw = self._words.tobytes()
        page_bytes = PAGE_WORDS * self._words.itemsize
        zero_page = bytes(page_bytes)
        pages: Set[int] = set()
        for page in range(self.n_pages):
            chunk = raw[page * page_bytes : (page + 1) * page_bytes]
            if chunk != zero_page and chunk.strip(b"\x00"):
                pages.add(page)
        return pages

    def _nonzero_pages_reference(self) -> Set[int]:
        """The original per-word scan; equality with
        :meth:`nonzero_pages` is pinned by a regression test."""
        pages: Set[int] = set()
        words = self._words
        for base in range(0, self.size, PAGE_WORDS):
            if any(words[base : base + PAGE_WORDS]):
                pages.add(base // PAGE_WORDS)
        return pages

    def read_page(self, page: int) -> Sequence[int]:
        """Full word image of one page as a typed ``array`` slice (short
        final page zero-padded to PAGE_WORDS so every stored page has
        uniform size)."""
        if not 0 <= page < self.n_pages:
            raise IllegalAddress(page * PAGE_WORDS, "read-page")
        base = page * PAGE_WORDS
        words = self._words[base : base + PAGE_WORDS]
        if len(words) < PAGE_WORDS:
            words.extend((0,) * (PAGE_WORDS - len(words)))
        return words

    def load_page(self, page: int, words: Sequence[int]) -> None:
        """Restore one page image (raw chip access: bypasses write
        protection, like :meth:`poke`). Accepts a typed ``array`` (the
        zero-copy checkpoint path) or any integer sequence."""
        if not 0 <= page < self.n_pages:
            raise IllegalAddress(page * PAGE_WORDS, "load-page")
        base = page * PAGE_WORDS
        count = min(PAGE_WORDS, self.size - base)
        image = words[:count]
        if not (
            isinstance(image, array)
            and image.typecode == self._words.typecode
        ):
            image = array(self._words.typecode, image)
        self._words[base : base + count] = image
        if self._track_dirty:
            self._dirty_pages.add(page)


class MemoryBus:
    """The data-bus pads between the chip and main memory.

    Every read the chip performs — cache line fills, uncached MMIO loads
    and instruction fetches — crosses these pads, which makes them the
    place where *pin-level* fault injection acts: boundary-scan EXTEST
    can force individual bus lines for a bounded number of transactions
    (RIFLE/MESSALINE-style forcing, armed through the boundary chain).

    Forced bits corrupt the value *before* the cache computes parity on
    the fill, so pin faults are parity-consistent and evade the cache
    parity mechanism — a genuine difference between pin-level faults and
    faults injected into the cache arrays themselves.
    """

    def __init__(self, memory: Memory):
        self.memory = memory
        self.force_mask = 0
        self.force_value = 0
        self.force_reads = 0

    def reset_force(self) -> None:
        self.force_mask = 0
        self.force_value = 0
        self.force_reads = 0

    def arm_force(self, mask: int, value: int, reads: int) -> None:
        """Force ``mask`` bus lines to ``value`` for the next ``reads``
        read transactions."""
        self.force_mask = mask & 0xFFFFFFFF
        self.force_value = value & 0xFFFFFFFF
        self.force_reads = reads

    @property
    def forcing(self) -> bool:
        return self.force_reads > 0 and self.force_mask != 0

    def read(self, address: int) -> int:
        value = self.memory.read(address)
        if self.forcing:
            value = (value & ~self.force_mask) | (
                self.force_value & self.force_mask
            )
            self.force_reads -= 1
        return value & 0xFFFFFFFF

    def write(self, address: int, value: int) -> None:
        self.memory.write(address, value)
