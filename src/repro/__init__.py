"""GOOFI reproduction: generic object-oriented fault injection tool."""

#: Tool version recorded in RunMeta provenance rows (kept in sync with
#: pyproject.toml).
__version__ = "1.0.0"
