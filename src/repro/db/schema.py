"""DDL for the GOOFI database (Figure 4, plus run provenance).

Schema history:

* **v1** — the paper's tables: ``TargetSystemData``, ``CampaignData``,
  ``LoggedSystemState`` (with the ``parentExperiment`` re-run chain)
  and ``SchemaInfo``.
* **v2** — adds ``RunMeta``: one row per campaign *execution* recording
  tool version, RNG seed, config hash, worker count, final state and
  the final metrics snapshot, keyed to ``CampaignData`` the same way
  ``parentExperiment`` keys re-runs. Upgrading from v1 is additive
  (every table is ``CREATE TABLE IF NOT EXISTS``), so
  :class:`~repro.db.database.GoofiDatabase` migrates v1 files in place
  by stamping the new version.
* **v3** — adds ``LoggedSystemState.derivedFrom``: for experiments whose
  outcome was statically derived by the equivalence engine
  (``preinjection_mode="equivalence"``), the experiment name of the
  executed class representative; NULL for executed experiments.
  Upgrading from v1/v2 is additive: ``CREATE TABLE IF NOT EXISTS``
  cannot grow an existing table, so the migration issues an
  ``ALTER TABLE ... ADD COLUMN`` before stamping the version.
* **v4** — the campaign fabric (``goofi serve``): adds the ``FabricJob``
  table (one row per submitted job: tenant, priority, lifecycle
  timestamps, terminal result) and ``RunMeta.jobId`` / ``RunMeta.tenant``
  so the provenance chain reaches from an experiment row through RunMeta
  to the submitting tenant. Additive like v3: new table via
  ``CREATE TABLE IF NOT EXISTS``, new columns via ``ALTER TABLE``.
* **v5** — the streaming analytics layer (``goofi analyze``): two
  covering expression indices over ``LoggedSystemState`` so per-campaign
  outcome mixes and location×time heatmaps come out of index scans
  instead of full-table JSON parses — ``(campaignName, termination
  kind)`` and ``(campaignName, first-injection location, first-injection
  time)``, both extracted from the ``experimentData`` JSON. Purely
  additive (``CREATE INDEX IF NOT EXISTS``), so v1–v4 files upgrade in
  place by stamping the version.
"""

SCHEMA_VERSION = 5

#: Prior versions that upgrade in place (purely additive DDL).
MIGRATABLE_VERSIONS = (1, 2, 3, 4)

DDL = """
PRAGMA foreign_keys = ON;

CREATE TABLE IF NOT EXISTS TargetSystemData (
    targetName   TEXT PRIMARY KEY,
    description  TEXT NOT NULL,
    createdAt    TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP
);

CREATE TABLE IF NOT EXISTS CampaignData (
    campaignName TEXT PRIMARY KEY,
    targetName   TEXT NOT NULL
                 REFERENCES TargetSystemData(targetName)
                 ON DELETE RESTRICT,
    data         TEXT NOT NULL,
    createdAt    TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP
);

CREATE TABLE IF NOT EXISTS LoggedSystemState (
    experimentName   TEXT PRIMARY KEY,
    parentExperiment TEXT
                     REFERENCES LoggedSystemState(experimentName)
                     ON DELETE SET NULL,
    campaignName     TEXT NOT NULL
                     REFERENCES CampaignData(campaignName)
                     ON DELETE CASCADE,
    experimentData   TEXT NOT NULL,
    stateVector      BLOB NOT NULL,
    isReference      INTEGER NOT NULL DEFAULT 0,
    derivedFrom      TEXT
                     REFERENCES LoggedSystemState(experimentName)
                     ON DELETE SET NULL,
    loggedAt         TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP
);

CREATE INDEX IF NOT EXISTS idx_logged_campaign
    ON LoggedSystemState(campaignName);

CREATE INDEX IF NOT EXISTS idx_logged_campaign_outcome
    ON LoggedSystemState(
        campaignName,
        json_extract(experimentData, '$.termination.kind')
    );

CREATE INDEX IF NOT EXISTS idx_logged_campaign_location_time
    ON LoggedSystemState(
        campaignName,
        json_extract(experimentData, '$.injections[0].location'),
        json_extract(experimentData, '$.injections[0].time')
    );

CREATE TABLE IF NOT EXISTS RunMeta (
    runId           INTEGER PRIMARY KEY AUTOINCREMENT,
    campaignName    TEXT NOT NULL
                    REFERENCES CampaignData(campaignName)
                    ON DELETE CASCADE,
    startedAt       TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP,
    finishedAt      TEXT,
    toolVersion     TEXT NOT NULL,
    seed            INTEGER NOT NULL,
    configHash      TEXT NOT NULL,
    nWorkers        INTEGER NOT NULL DEFAULT 1,
    nExperiments    INTEGER NOT NULL DEFAULT 0,
    state           TEXT NOT NULL DEFAULT 'running',
    metaVersion     INTEGER NOT NULL,
    metricsSnapshot TEXT,
    jobId           TEXT,
    tenant          TEXT
);

CREATE INDEX IF NOT EXISTS idx_runmeta_campaign
    ON RunMeta(campaignName);

CREATE TABLE IF NOT EXISTS FabricJob (
    jobId            TEXT PRIMARY KEY,
    tenant           TEXT NOT NULL,
    state            TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    campaignName     TEXT NOT NULL,
    spec             TEXT NOT NULL,
    submittedAt      REAL NOT NULL,
    startedAt        REAL,
    finishedAt       REAL,
    allocatedWorkers INTEGER NOT NULL DEFAULT 0,
    runId            INTEGER
                     REFERENCES RunMeta(runId)
                     ON DELETE SET NULL,
    error            TEXT,
    result           TEXT
);

CREATE INDEX IF NOT EXISTS idx_fabricjob_tenant
    ON FabricJob(tenant);

CREATE TABLE IF NOT EXISTS SchemaInfo (
    version INTEGER NOT NULL
);
"""
