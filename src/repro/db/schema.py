"""DDL for the GOOFI database (Figure 4)."""

SCHEMA_VERSION = 1

DDL = """
PRAGMA foreign_keys = ON;

CREATE TABLE IF NOT EXISTS TargetSystemData (
    targetName   TEXT PRIMARY KEY,
    description  TEXT NOT NULL,
    createdAt    TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP
);

CREATE TABLE IF NOT EXISTS CampaignData (
    campaignName TEXT PRIMARY KEY,
    targetName   TEXT NOT NULL
                 REFERENCES TargetSystemData(targetName)
                 ON DELETE RESTRICT,
    data         TEXT NOT NULL,
    createdAt    TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP
);

CREATE TABLE IF NOT EXISTS LoggedSystemState (
    experimentName   TEXT PRIMARY KEY,
    parentExperiment TEXT
                     REFERENCES LoggedSystemState(experimentName)
                     ON DELETE SET NULL,
    campaignName     TEXT NOT NULL
                     REFERENCES CampaignData(campaignName)
                     ON DELETE CASCADE,
    experimentData   TEXT NOT NULL,
    stateVector      BLOB NOT NULL,
    isReference      INTEGER NOT NULL DEFAULT 0,
    loggedAt         TEXT NOT NULL DEFAULT CURRENT_TIMESTAMP
);

CREATE INDEX IF NOT EXISTS idx_logged_campaign
    ON LoggedSystemState(campaignName);

CREATE TABLE IF NOT EXISTS SchemaInfo (
    version INTEGER NOT NULL
);
"""
