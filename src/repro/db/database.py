"""GoofiDatabase: connection management, CRUD and the result-sink protocol.

The database object doubles as the *sink* the fault-injection algorithms
log into (``log_reference`` / ``log_experiment``), so a campaign run with
``algorithm.run_campaign(campaign, sink=db)`` lands directly in
``LoggedSystemState`` — the paper's fault-injection phase, verbatim.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.campaign import CampaignData
from repro.core.experiment import ExperimentResult, ReferenceRun, Termination
from repro.db.schema import DDL, MIGRATABLE_VERSIONS, SCHEMA_VERSION
from repro.db.statevector import decode_state_payload, encode_state_payload
from repro.observability import get_observability
from repro.observability.runmeta import (
    RUNMETA_SCHEMA_VERSION,
    RunMeta,
    campaign_config_hash,
    tool_version,
)
from repro.util.errors import DatabaseError

# Upsert for LoggedSystemState rows, shared by the single-row and the
# batched (executemany) sink paths.
_LOGGED_UPSERT = (
    "INSERT INTO LoggedSystemState("
    "experimentName, parentExperiment, campaignName, experimentData, "
    "stateVector, isReference, derivedFrom) VALUES (?, ?, ?, ?, ?, ?, ?) "
    "ON CONFLICT(experimentName) DO UPDATE SET "
    "parentExperiment = excluded.parentExperiment, "
    "experimentData = excluded.experimentData, "
    "stateVector = excluded.stateVector, "
    "isReference = excluded.isReference, "
    "derivedFrom = excluded.derivedFrom"
)


class GoofiDatabase:
    """A GOOFI campaign database (sqlite3 file or in-memory)."""

    def __init__(self, path: str = ":memory:", readonly: bool = False):
        self.path = path
        self.readonly = readonly
        if readonly:
            # Analytics connections: a WAL *snapshot* reader that can
            # never take the write lock, so a mid-campaign
            # ``goofi analyze`` cannot stall the writer (and a crash of
            # the analysis can never corrupt the sink). ``mode=ro``
            # makes the failure mode an immediate error instead of a
            # blocking lock acquisition.
            if path == ":memory:":
                raise DatabaseError(
                    "read-only connections need a database file"
                )
            from urllib.parse import quote

            try:
                self._conn = sqlite3.connect(
                    f"file:{quote(path)}?mode=ro",
                    uri=True,
                    check_same_thread=False,
                )
            except sqlite3.OperationalError as exc:
                raise DatabaseError(
                    f"cannot open {path!r} read-only: {exc}"
                ) from exc
            self._conn.row_factory = sqlite3.Row
            # Belt and braces: refuse writes at the connection level too
            # (mode=ro already rejects them at the VFS layer).
            self._conn.execute("PRAGMA query_only = ON")
            row = self._conn.execute(
                "SELECT version FROM SchemaInfo"
            ).fetchone()
            version = row["version"] if row is not None else None
            # Older-but-migratable files are readable as-is: every v5
            # feature the reader relies on is additive (the new indices
            # only make queries faster, never change their results).
            if version not in MIGRATABLE_VERSIONS + (SCHEMA_VERSION,):
                raise DatabaseError(
                    f"database schema version {version} != {SCHEMA_VERSION}"
                )
            return
        # Campaigns may log from a worker thread (run_in_thread) or flush
        # batches from the parallel runner's parent loop.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        if path != ":memory:":
            # WAL keeps readers (analysis queries, resume's
            # completed_indices) unblocked while a campaign streams
            # batches in, and makes the one-commit-per-batch path cheap.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(DDL)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._migrate_columns()
        row = self._conn.execute("SELECT version FROM SchemaInfo").fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO SchemaInfo(version) VALUES (?)", (SCHEMA_VERSION,)
            )
        elif row["version"] in MIGRATABLE_VERSIONS:
            # Additive upgrade: the DDL above already created any table
            # the old file was missing; stamping the version completes
            # the in-place migration (v1 → v2 added RunMeta only).
            self._conn.execute(
                "UPDATE SchemaInfo SET version = ?", (SCHEMA_VERSION,)
            )
        elif row["version"] != SCHEMA_VERSION:
            raise DatabaseError(
                f"database schema version {row['version']} != {SCHEMA_VERSION}"
            )
        self._conn.commit()

    def _migrate_columns(self) -> None:
        """Add columns newer schema versions grew on existing tables.

        ``CREATE TABLE IF NOT EXISTS`` is a no-op on a pre-existing
        table, so additive *column* migrations need an explicit
        ``ALTER TABLE`` (v2 → v3: ``LoggedSystemState.derivedFrom``;
        v3 → v4: ``RunMeta.jobId`` / ``RunMeta.tenant``)."""
        columns = {
            row["name"]
            for row in self._conn.execute(
                "PRAGMA table_info(LoggedSystemState)"
            )
        }
        if "derivedFrom" not in columns:
            self._conn.execute(
                "ALTER TABLE LoggedSystemState ADD COLUMN derivedFrom TEXT "
                "REFERENCES LoggedSystemState(experimentName) "
                "ON DELETE SET NULL"
            )
        runmeta_columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(RunMeta)")
        }
        if "jobId" not in runmeta_columns:
            self._conn.execute("ALTER TABLE RunMeta ADD COLUMN jobId TEXT")
        if "tenant" not in runmeta_columns:
            self._conn.execute("ALTER TABLE RunMeta ADD COLUMN tenant TEXT")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "GoofiDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # TargetSystemData
    # ------------------------------------------------------------------

    def save_target(self, name: str, description: dict) -> None:
        self._conn.execute(
            "INSERT INTO TargetSystemData(targetName, description) VALUES (?, ?) "
            "ON CONFLICT(targetName) DO UPDATE SET description = excluded.description",
            (name, json.dumps(description, sort_keys=True)),
        )
        self._conn.commit()

    def load_target(self, name: str) -> dict:
        row = self._conn.execute(
            "SELECT description FROM TargetSystemData WHERE targetName = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no target {name!r} in database")
        return json.loads(row["description"])

    def list_targets(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT targetName FROM TargetSystemData ORDER BY targetName"
        ).fetchall()
        return [row["targetName"] for row in rows]

    def _ensure_target(self, name: str) -> None:
        self._conn.execute(
            "INSERT OR IGNORE INTO TargetSystemData(targetName, description) "
            "VALUES (?, '{}')",
            (name,),
        )

    # ------------------------------------------------------------------
    # CampaignData
    # ------------------------------------------------------------------

    def save_campaign(self, campaign: CampaignData) -> None:
        self._ensure_target(campaign.target_name)
        self._conn.execute(
            "INSERT INTO CampaignData(campaignName, targetName, data) "
            "VALUES (?, ?, ?) "
            "ON CONFLICT(campaignName) DO UPDATE SET "
            "targetName = excluded.targetName, data = excluded.data",
            (campaign.campaign_name, campaign.target_name, campaign.to_json()),
        )
        self._conn.commit()

    def load_campaign(self, name: str) -> CampaignData:
        row = self._conn.execute(
            "SELECT data FROM CampaignData WHERE campaignName = ?", (name,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no campaign {name!r} in database")
        return CampaignData.from_json(row["data"])

    def list_campaigns(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT campaignName FROM CampaignData ORDER BY campaignName"
        ).fetchall()
        return [row["campaignName"] for row in rows]

    def delete_campaign(self, name: str) -> None:
        self._conn.execute(
            "DELETE FROM CampaignData WHERE campaignName = ?", (name,)
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # LoggedSystemState — the sink protocol
    # ------------------------------------------------------------------

    @staticmethod
    def reference_name(campaign_name: str) -> str:
        return f"{campaign_name}-ref"

    def log_reference(self, campaign: CampaignData, ref: ReferenceRun) -> None:
        self.save_campaign(campaign)
        experiment_data = {
            "reference": True,
            "duration_cycles": ref.duration_cycles,
            "duration_instructions": ref.duration_instructions,
            "termination": ref.termination.to_dict(),
            "outputs": ref.outputs,
        }
        self._insert_logged(
            name=self.reference_name(campaign.campaign_name),
            parent=None,
            campaign_name=campaign.campaign_name,
            experiment_data=experiment_data,
            state_blob=encode_state_payload(ref.state_vector, ref.detail_states),
            is_reference=True,
            derived_from=None,
        )

    def log_experiment(
        self, campaign: CampaignData, result: ExperimentResult
    ) -> None:
        get_observability().metrics.counter("db.rows_total").inc()
        self._insert_logged(
            name=result.name,
            parent=result.parent_experiment,
            campaign_name=campaign.campaign_name,
            experiment_data=result.experiment_data(),
            state_blob=encode_state_payload(
                result.state_vector, result.detail_states
            ),
            is_reference=False,
            derived_from=result.derived_from,
        )

    def log_experiments(
        self, campaign: CampaignData, results: List[ExperimentResult]
    ) -> None:
        """Batched sink path: land many experiment rows with a single
        ``executemany`` and one commit.

        The parallel campaign runner flushes its reorder buffer through
        this method; combined with WAL journaling on file databases it
        turns per-experiment fsync cost into per-batch cost."""
        if not results:
            return
        obs = get_observability()
        with obs.profile("db.batch", rows=len(results)):
            rows = [
                self._logged_row(
                    name=result.name,
                    parent=result.parent_experiment,
                    campaign_name=campaign.campaign_name,
                    experiment_data=result.experiment_data(),
                    state_blob=encode_state_payload(
                        result.state_vector, result.detail_states
                    ),
                    is_reference=False,
                    derived_from=result.derived_from,
                )
                for result in results
            ]
            self._conn.executemany(_LOGGED_UPSERT, rows)
            self._conn.commit()
        metrics = obs.metrics
        if metrics.enabled:
            metrics.counter("db.batches_total").inc()
            metrics.counter("db.rows_total").inc(len(results))

    @staticmethod
    def _logged_row(
        name: str,
        parent: Optional[str],
        campaign_name: str,
        experiment_data: dict,
        state_blob: bytes,
        is_reference: bool,
        derived_from: Optional[str] = None,
    ) -> Tuple:
        return (
            name,
            parent,
            campaign_name,
            json.dumps(experiment_data, sort_keys=True),
            state_blob,
            int(is_reference),
            derived_from,
        )

    def _insert_logged(
        self,
        name: str,
        parent: Optional[str],
        campaign_name: str,
        experiment_data: dict,
        state_blob: bytes,
        is_reference: bool,
        derived_from: Optional[str] = None,
    ) -> None:
        self._conn.execute(
            _LOGGED_UPSERT,
            self._logged_row(
                name, parent, campaign_name, experiment_data, state_blob,
                is_reference, derived_from,
            ),
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # RunMeta — per-execution provenance (schema v2)
    # ------------------------------------------------------------------

    def record_run_start(
        self,
        campaign: CampaignData,
        n_workers: int = 1,
        job_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> int:
        """Open a provenance row for one campaign execution; returns its
        ``runId``. Saves the campaign first so the foreign key holds
        (the same ordering ``log_reference`` uses). Fabric runs pass
        ``job_id``/``tenant`` (via ``CampaignController.run_tags``) so
        the provenance chain reaches the submitting tenant."""
        self.save_campaign(campaign)
        cursor = self._conn.execute(
            "INSERT INTO RunMeta(campaignName, toolVersion, seed, "
            "configHash, nWorkers, nExperiments, state, metaVersion, "
            "jobId, tenant) "
            "VALUES (?, ?, ?, ?, ?, ?, 'running', ?, ?, ?)",
            (
                campaign.campaign_name,
                tool_version(),
                campaign.seed,
                campaign_config_hash(campaign),
                n_workers,
                campaign.n_experiments,
                RUNMETA_SCHEMA_VERSION,
                job_id,
                tenant,
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid or 0)

    def record_run_end(
        self,
        run_id: int,
        state: str,
        metrics_snapshot: Optional[dict] = None,
        n_workers: Optional[int] = None,
    ) -> None:
        """Close a provenance row: final state, finish timestamp, the
        final metrics snapshot, and (for parallel runs that only learn
        their effective pool size late) the realised worker count."""
        snapshot_text = (
            json.dumps(metrics_snapshot, sort_keys=True)
            if metrics_snapshot is not None
            else None
        )
        self._conn.execute(
            "UPDATE RunMeta SET state = ?, finishedAt = CURRENT_TIMESTAMP, "
            "metricsSnapshot = COALESCE(?, metricsSnapshot), "
            "nWorkers = COALESCE(?, nWorkers) WHERE runId = ?",
            (state, snapshot_text, n_workers, run_id),
        )
        self._conn.commit()

    def list_runs(self, campaign_name: Optional[str] = None) -> List[RunMeta]:
        """Provenance rows, newest first (optionally for one campaign)."""
        if campaign_name is None:
            rows = self._conn.execute(
                "SELECT * FROM RunMeta ORDER BY runId DESC"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM RunMeta WHERE campaignName = ? "
                "ORDER BY runId DESC",
                (campaign_name,),
            ).fetchall()
        return [self._row_to_runmeta(row) for row in rows]

    def load_run(self, run_id: int) -> RunMeta:
        row = self._conn.execute(
            "SELECT * FROM RunMeta WHERE runId = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no RunMeta row {run_id}")
        return self._row_to_runmeta(row)

    @staticmethod
    def _row_to_runmeta(row: sqlite3.Row) -> RunMeta:
        snapshot = row["metricsSnapshot"]
        return RunMeta(
            run_id=row["runId"],
            campaign_name=row["campaignName"],
            seed=row["seed"],
            config_hash=row["configHash"],
            n_workers=row["nWorkers"],
            n_experiments=row["nExperiments"],
            tool_version=row["toolVersion"],
            state=row["state"],
            started_at=row["startedAt"] or "",
            finished_at=row["finishedAt"],
            meta_version=row["metaVersion"],
            metrics_snapshot=json.loads(snapshot) if snapshot else None,
            job_id=row["jobId"],
            tenant=row["tenant"],
        )

    # ------------------------------------------------------------------
    # FabricJob — the campaign fabric's job table (schema v4)
    # ------------------------------------------------------------------

    def save_job(self, job: Dict) -> None:
        """Upsert one fabric job row (``goofi serve`` persists every
        lifecycle transition here, so jobs survive server restarts and
        are queryable next to the experiment rows they produced).

        ``job`` is the JSON-safe dict the service layer exchanges
        (:meth:`repro.service.schema.JobRecord.to_dict` plus a
        ``"spec"`` key holding the submission document)."""
        self._conn.execute(
            "INSERT INTO FabricJob(jobId, tenant, state, priority, "
            "campaignName, spec, submittedAt, startedAt, finishedAt, "
            "allocatedWorkers, runId, error, result) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT(jobId) DO UPDATE SET "
            "state = excluded.state, "
            "startedAt = excluded.startedAt, "
            "finishedAt = excluded.finishedAt, "
            "allocatedWorkers = excluded.allocatedWorkers, "
            "runId = excluded.runId, "
            "error = excluded.error, "
            "result = excluded.result",
            (
                job["job_id"],
                job.get("tenant", "default"),
                job.get("state", "queued"),
                int(job.get("priority", 0)),
                job.get("campaign_name", ""),
                json.dumps(job.get("spec", {}), sort_keys=True),
                float(job.get("submitted_at") or 0.0),
                job.get("started_at"),
                job.get("finished_at"),
                int(job.get("allocated_workers", 0)),
                job.get("run_id"),
                job.get("error"),
                (
                    json.dumps(job["result"], sort_keys=True)
                    if job.get("result") is not None
                    else None
                ),
            ),
        )
        self._conn.commit()

    def load_job(self, job_id: str) -> Dict:
        row = self._conn.execute(
            "SELECT * FROM FabricJob WHERE jobId = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no fabric job {job_id!r}")
        return self._row_to_job(row)

    def list_jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        """Persisted fabric jobs, submission order (optionally one
        tenant's)."""
        if tenant is None:
            rows = self._conn.execute(
                "SELECT * FROM FabricJob ORDER BY submittedAt, jobId"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM FabricJob WHERE tenant = ? "
                "ORDER BY submittedAt, jobId",
                (tenant,),
            ).fetchall()
        return [self._row_to_job(row) for row in rows]

    @staticmethod
    def _row_to_job(row: sqlite3.Row) -> Dict:
        return {
            "job_id": row["jobId"],
            "tenant": row["tenant"],
            "state": row["state"],
            "priority": row["priority"],
            "campaign_name": row["campaignName"],
            "spec": json.loads(row["spec"]) if row["spec"] else {},
            "submitted_at": row["submittedAt"],
            "started_at": row["startedAt"],
            "finished_at": row["finishedAt"],
            "allocated_workers": row["allocatedWorkers"],
            "run_id": row["runId"],
            "error": row["error"],
            "result": json.loads(row["result"]) if row["result"] else None,
        }

    # ------------------------------------------------------------------
    # Retrieval for the analysis phase
    # ------------------------------------------------------------------

    def load_reference(self, campaign_name: str) -> ReferenceRun:
        row = self._fetch_logged(self.reference_name(campaign_name))
        data = json.loads(row["experimentData"])
        payload = decode_state_payload(row["stateVector"])
        return ReferenceRun(
            duration_cycles=data["duration_cycles"],
            duration_instructions=data["duration_instructions"],
            termination=Termination.from_dict(data["termination"]),
            state_vector=payload["final"],
            outputs=data["outputs"],
            detail_states=payload["detail"],
        )

    def load_experiment(self, name: str) -> ExperimentResult:
        row = self._fetch_logged(name)
        return self._row_to_result(row)

    def load_experiments(self, campaign_name: str) -> List[ExperimentResult]:
        rows = self._conn.execute(
            "SELECT * FROM LoggedSystemState "
            "WHERE campaignName = ? AND isReference = 0 "
            "ORDER BY experimentName",
            (campaign_name,),
        ).fetchall()
        return [self._row_to_result(row) for row in rows]

    def iter_experiments(
        self, campaign_name: str, batch_size: int = 1024
    ) -> Iterator[ExperimentResult]:
        """Server-side batched cursor over a campaign's experiment rows.

        Streams rows in ``experimentName`` order (the same order
        :meth:`load_experiments` returns) without ever materialising the
        whole campaign in memory — the streaming analytics engine walks
        million-row campaigns through this in ``batch_size`` windows.
        The cursor reads whatever rows are committed when each
        ``fetchmany`` executes, so it is safe to run against a live
        campaign (on a WAL file the reader never blocks the writer)."""
        if batch_size < 1:
            raise DatabaseError(f"batch_size must be >= 1: {batch_size}")
        cursor = self._conn.execute(
            "SELECT * FROM LoggedSystemState "
            "WHERE campaignName = ? AND isReference = 0 "
            "ORDER BY experimentName",
            (campaign_name,),
        )
        while True:
            rows = cursor.fetchmany(batch_size)
            if not rows:
                break
            for row in rows:
                yield self._row_to_result(row)

    def count_experiments(self, campaign_name: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) AS n FROM LoggedSystemState "
            "WHERE campaignName = ? AND isReference = 0",
            (campaign_name,),
        ).fetchone()
        return int(row["n"])

    def completed_indices(self, campaign_name: str) -> List[int]:
        """Indices of experiments already logged for this campaign —
        what a resumed campaign run can skip."""
        import json as _json

        rows = self._conn.execute(
            "SELECT experimentData FROM LoggedSystemState "
            "WHERE campaignName = ? AND isReference = 0 "
            "AND parentExperiment IS NULL",
            (campaign_name,),
        ).fetchall()
        indices = []
        for row in rows:
            data = _json.loads(row["experimentData"])
            index = data.get("index")
            if isinstance(index, int) and index >= 0:
                indices.append(index)
        return sorted(indices)

    def children_of(self, experiment_name: str) -> List[str]:
        """Experiments re-run from ``experiment_name`` (the
        parentExperiment provenance chain of Figure 4)."""
        rows = self._conn.execute(
            "SELECT experimentName FROM LoggedSystemState "
            "WHERE parentExperiment = ? ORDER BY experimentName",
            (experiment_name,),
        ).fetchall()
        return [row["experimentName"] for row in rows]

    def _fetch_logged(self, name: str) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM LoggedSystemState WHERE experimentName = ?", (name,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no logged experiment {name!r}")
        return row

    @staticmethod
    def _row_to_result(row: sqlite3.Row) -> ExperimentResult:
        from repro.core.experiment import Injection  # local to avoid cycle

        data = json.loads(row["experimentData"])
        payload = decode_state_payload(row["stateVector"])
        termination = data.get("termination")
        result = ExperimentResult(
            name=row["experimentName"],
            index=data.get("index", -1),
            campaign_name=row["campaignName"],
            parent_experiment=row["parentExperiment"],
            injections=[Injection.from_dict(i) for i in data.get("injections", [])],
            termination=Termination.from_dict(termination) if termination else None,
            state_vector=payload["final"],
            outputs=data.get("outputs", {}),
            detail_states=payload["detail"],
            wall_seconds=data.get("wall_seconds", 0.0),
            derived_from=row["derivedFrom"],
        )
        return result

    # ------------------------------------------------------------------
    # Raw SQL access for user analysis scripts (the paper's analysis
    # phase lets users run tailor-made queries).
    # ------------------------------------------------------------------

    def query(self, sql: str, params: Tuple = ()) -> List[sqlite3.Row]:
        return self._conn.execute(sql, params).fetchall()
