"""Canned analysis queries over the GOOFI database.

The paper's analysis phase has users write "tailor made scripts or
programs that query the database"; this module collects the queries every
campaign needs, working directly on ``LoggedSystemState`` rows.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.db.database import GoofiDatabase


def termination_breakdown(db: GoofiDatabase, campaign_name: str) -> Dict[str, int]:
    """Count of experiments per termination kind."""
    rows = db.query(
        "SELECT experimentData FROM LoggedSystemState "
        "WHERE campaignName = ? AND isReference = 0",
        (campaign_name,),
    )
    counts: Dict[str, int] = {}
    for row in rows:
        data = json.loads(row["experimentData"])
        termination = data.get("termination") or {}
        kind = termination.get("kind", "unknown")
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def detection_breakdown(db: GoofiDatabase, campaign_name: str) -> Dict[str, int]:
    """Detected errors per error-detection mechanism."""
    rows = db.query(
        "SELECT experimentData FROM LoggedSystemState "
        "WHERE campaignName = ? AND isReference = 0",
        (campaign_name,),
    )
    counts: Dict[str, int] = {}
    for row in rows:
        data = json.loads(row["experimentData"])
        termination = data.get("termination") or {}
        if termination.get("kind") == "trap":
            name = termination.get("trap_name", "unknown")
            counts[name] = counts.get(name, 0) + 1
    return counts


def injection_locations(
    db: GoofiDatabase, campaign_name: str
) -> List[Tuple[str, int]]:
    """(location key, count) of every injected fault, most frequent first."""
    rows = db.query(
        "SELECT experimentData FROM LoggedSystemState "
        "WHERE campaignName = ? AND isReference = 0",
        (campaign_name,),
    )
    counts: Dict[str, int] = {}
    for row in rows:
        data = json.loads(row["experimentData"])
        for injection in data.get("injections", []):
            key = injection["location"]
            counts[key] = counts.get(key, 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def campaign_wall_time(db: GoofiDatabase, campaign_name: str) -> float:
    """Total wall-clock seconds spent in the campaign's experiments."""
    rows = db.query(
        "SELECT experimentData FROM LoggedSystemState "
        "WHERE campaignName = ? AND isReference = 0",
        (campaign_name,),
    )
    return sum(
        json.loads(row["experimentData"]).get("wall_seconds", 0.0)
        for row in rows
    )


def rerun_tree(db: GoofiDatabase, campaign_name: str) -> Dict[str, List[str]]:
    """parentExperiment provenance: original -> list of re-runs."""
    rows = db.query(
        "SELECT experimentName, parentExperiment FROM LoggedSystemState "
        "WHERE campaignName = ? AND parentExperiment IS NOT NULL",
        (campaign_name,),
    )
    tree: Dict[str, List[str]] = {}
    for row in rows:
        tree.setdefault(row["parentExperiment"], []).append(
            row["experimentName"]
        )
    return tree
