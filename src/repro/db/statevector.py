"""State-vector codec.

The ``stateVector`` column of ``LoggedSystemState`` holds the final
observed state and, in detail mode, one state per executed instruction.
Detail-mode payloads are large (the paper notes the time overhead), so
they are stored as zlib-compressed JSON blobs with a small header.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, List, Optional

from repro.util.errors import DatabaseError

_MAGIC = b"GSV1"


def encode_state_payload(
    final: Dict[str, int], detail: Optional[List[Dict[str, int]]] = None
) -> bytes:
    """Pack the final state vector (and optional detail trace) into a blob."""
    payload = {"final": final, "detail": detail or []}
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return _MAGIC + zlib.compress(raw, level=6)


def decode_state_payload(blob: bytes) -> Dict:
    """Inverse of :func:`encode_state_payload`."""
    if not blob.startswith(_MAGIC):
        raise DatabaseError("state vector blob has unknown format")
    raw = zlib.decompress(bytes(blob[len(_MAGIC):]))
    payload = json.loads(raw)
    if "final" not in payload or "detail" not in payload:
        raise DatabaseError("state vector payload is incomplete")
    return payload
