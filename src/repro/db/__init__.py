"""The GOOFI database (paper Figure 4).

Three tables linked by foreign keys:

* ``TargetSystemData``   — everything needed to set up campaigns for a
  target (scan-chain structure, memory geometry, …),
* ``CampaignData``       — everything needed to conduct a campaign,
* ``LoggedSystemState``  — the system state logged during and after each
  experiment, with ``parentExperiment`` provenance for detail-mode
  re-runs.

"Through the foreign keys, we prevent inconsistencies in the database and
minimize the information stored in the tables while still being able to
track all information about the campaign and the target system."

The store is sqlite3 (SQL-compatible and in the standard library — the
portability property the paper gets from "a SQL compatible database").
"""

from repro.db.database import GoofiDatabase
from repro.db.statevector import decode_state_payload, encode_state_payload

__all__ = ["GoofiDatabase", "encode_state_payload", "decode_state_payload"]
