"""Counters, gauges and timing histograms with JSON snapshots.

A :class:`MetricsRegistry` names a set of instruments. Instruments are
created on first use (``registry.counter("experiments_total").inc()``),
snapshot to a plain JSON-serialisable dictionary, and merge additively —
the operation the parallel campaign runner uses to aggregate per-worker
deltas into the parent's registry (prefixed ``worker<N>.``) so that the
per-worker experiment counts provably sum to the serial totals.

A disabled registry hands out one shared :data:`NULL_INSTRUMENT` whose
methods do nothing, so instrumented hot paths cost a dictionary-free
method call when metrics are off.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "SNAPSHOT_SCHEMA_VERSION",
]

SNAPSHOT_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds, tuned for seconds-scale timings
#: (100 us .. 60 s); everything above the last bound lands in +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    60.0,
)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled metrics."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value: float = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("_lock", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self,
        lock: threading.Lock,
        bounds: Optional[Sequence[float]] = None,
    ):
        self._lock = lock
        self.bounds: Tuple[float, ...] = tuple(bounds or DEFAULT_BUCKETS)
        #: One slot per bound plus the +Inf overflow slot.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            slot = len(self.bounds)
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    slot = position
                    break
            self.bucket_counts[slot] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        with self._lock:
            if tuple(data.get("bounds", ())) != self.bounds:
                # Different bucketing: fold into count/sum/min/max only,
                # charging the overflow slot (merging never drops samples).
                extra = int(data.get("count", 0))
                self.bucket_counts[-1] += extra
            else:
                for slot, n in enumerate(data.get("bucket_counts", ())):
                    self.bucket_counts[slot] += int(n)
            self.count += int(data.get("count", 0))
            self.total += float(data.get("sum", 0.0))
            their_min = data.get("min")
            if their_min is not None:
                self.min = (
                    their_min if self.min is None else min(self.min, their_min)
                )
            their_max = data.get("max")
            if their_max is not None:
                self.max = (
                    their_max if self.max is None else max(self.max, their_max)
                )


class MetricsRegistry:
    """Named instruments, snapshotable to JSON and mergeable."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Union[Counter, _NullInstrument]:
        if not self.enabled:
            return NULL_INSTRUMENT
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(self._lock))
        return counter

    def gauge(self, name: str) -> Union[Gauge, _NullInstrument]:
        if not self.enabled:
            return NULL_INSTRUMENT
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(self._lock))
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Union[Histogram, _NullInstrument]:
        if not self.enabled:
            return NULL_INSTRUMENT
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(self._lock, bounds)
                )
        return histogram

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-serialisable view of every instrument."""
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA_VERSION,
                "created": time.time(),
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def drain(self) -> Dict[str, Any]:
        """Snapshot, then reset every instrument to zero.

        The worker-to-parent shipping primitive: a worker drains after
        each shard so successive deltas merge additively without double
        counting."""
        snapshot = self.snapshot()
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return snapshot

    def merge(self, snapshot: Dict[str, Any], prefix: str = "") -> None:
        """Fold a snapshot into this registry (counters and histogram
        samples add; gauges take the incoming value). ``prefix`` namespaces
        the incoming names, e.g. ``worker0.``."""
        if not self.enabled or not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(prefix + name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(prefix + name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(prefix + name, data.get("bounds"))
            if isinstance(histogram, Histogram):
                histogram.merge_dict(data)


#: Shared disabled registry (the module default).
NULL_METRICS = MetricsRegistry(enabled=False)
