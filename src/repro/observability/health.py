"""Campaign health monitoring: heartbeats, stall and drift detection.

A long campaign (the Figure-7 workflow) must be *watchable* while it
runs, not just auditable afterwards. The
:class:`CampaignHealthMonitor` threads through the campaign controller
and the parallel runner and answers the three operator questions:

* **is it moving?** — per-worker heartbeat timestamps plus stall
  detection: no experiment completed within ``stall_factor`` × the EWMA
  of recent inter-completion latency (floored at
  ``stall_floor_seconds``) raises a ``stall`` alert;
* **is it still measuring the same thing?** — outcome-mix drift: the
  termination-kind distribution of the most recent window is compared
  (total-variation distance) against the campaign's own running
  baseline, so a fault mode that suddenly stops appearing (a wedged
  simulator, a corrupted workload image) raises a ``drift`` alert;
* **when is it done?** — rate and ETA estimation from the same EWMA,
  surfaced in the progress window and as gauges on the exporter.

Alerts are edge-triggered (one per episode, re-armed on recovery) and
land in three places at once: the monitor's ``alerts`` list (served by
the exporter's ``/healthz``), ``health.*_alerts_total`` counters, and
``health-alert`` trace events.

Disabled path: :data:`NULL_HEALTH` is a shared no-op singleton; every
call site in the controller and the parallel runner guards with one
truth test (the PR 3 invariant).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "CampaignHealthMonitor",
    "HealthAlert",
    "NULL_HEALTH",
    "analysis_metrics",
    "get_health",
    "set_health",
]


def analysis_metrics() -> Dict[str, float]:
    """Live analytics gauges (set by the streaming analysis engine),
    keyed without their ``analysis.`` prefix — the health monitor and
    the fabric progress display graft these next to row-count progress
    so "how tight is the CI" is visible beside "how many rows are done".
    Empty when metrics are disabled or no analysis has run yet."""
    from repro.observability import get_observability

    metrics = get_observability().metrics
    if not metrics.enabled:
        return {}
    gauges = metrics.snapshot().get("gauges", {})
    return {
        key.split(".", 1)[1]: value
        for key, value in gauges.items()
        if key.startswith("analysis.")
    }

#: EWMA smoothing factor for inter-completion latency.
_EWMA_ALPHA = 0.2


@dataclass
class HealthAlert:
    """One edge-triggered health finding."""

    kind: str  # "stall" | "drift"
    message: str
    ts: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "ts": self.ts,
            "fields": dict(self.fields),
        }


class CampaignHealthMonitor:
    """Live health state of one campaign run."""

    def __init__(
        self,
        enabled: bool = True,
        stall_factor: float = 8.0,
        stall_floor_seconds: float = 2.0,
        drift_threshold: float = 0.5,
        drift_window: int = 30,
        drift_min_baseline: int = 30,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.enabled = enabled
        self.stall_factor = stall_factor
        self.stall_floor_seconds = stall_floor_seconds
        self.drift_threshold = drift_threshold
        self.drift_window = drift_window
        self.drift_min_baseline = drift_min_baseline
        self._clock = clock
        self._lock = threading.Lock()
        # -- progress state
        self.campaign_name = ""
        self.n_total = 0
        self.n_done = 0
        self.n_workers = 1
        self._started_at: Optional[float] = None
        self._last_completion: Optional[float] = None
        self._ewma_interval: Optional[float] = None
        # -- heartbeats (worker_id -> last-seen monotonic timestamp)
        self._heartbeats: Dict[int, float] = {}
        # -- outcome mix
        self._baseline_counts: Dict[str, int] = {}
        self._window: Deque[str] = deque(maxlen=max(1, drift_window))
        # -- alerting
        self.alerts: List[HealthAlert] = []
        self._stalled = False
        self._drifting = False
        # -- pause awareness (controller pause() / resume())
        self._paused_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def begin(
        self, campaign_name: str, n_total: int, n_workers: int = 1
    ) -> None:
        """Reset the monitor for a fresh campaign run."""
        if not self.enabled:
            return
        with self._lock:
            self.campaign_name = campaign_name
            self.n_total = n_total
            self.n_done = 0
            self.n_workers = n_workers
            self._started_at = self._clock()
            self._last_completion = None
            self._ewma_interval = None
            self._heartbeats.clear()
            self._baseline_counts.clear()
            self._window.clear()
            self.alerts = []
            self._stalled = False
            self._drifting = False
            self._paused_at = None

    def set_workers(self, n_workers: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.n_workers = n_workers

    def notify_paused(self) -> None:
        """The controller paused the campaign: freeze stall evaluation.

        An operator pause is deliberate silence — counting it as
        heartbeat silence would fire a spurious stall alert as soon as
        the pause outlives ``stall_factor × EWMA`` and then pollute the
        EWMA with one giant inter-completion interval on resume.
        Idempotent (a second pause notification keeps the first
        pause instant)."""
        if not self.enabled:
            return
        with self._lock:
            if self._paused_at is None:
                self._paused_at = self._clock()

    def notify_resumed(self) -> None:
        """The controller resumed: shift every timing reference forward
        by the pause duration so the paused interval vanishes from
        silence and EWMA computations — mirroring the controller's own
        paused-time exclusion from elapsed/rate. No-op when not
        paused."""
        if not self.enabled:
            return
        with self._lock:
            if self._paused_at is None:
                return
            now = self._clock()
            pause = max(0.0, now - self._paused_at)
            self._paused_at = None
            if self._started_at is not None:
                self._started_at = min(now, self._started_at + pause)
            if self._last_completion is not None:
                self._last_completion = min(
                    now, self._last_completion + pause
                )
            self._heartbeats = {
                worker_id: min(now, ts + pause)
                for worker_id, ts in self._heartbeats.items()
            }

    # -- feeding -----------------------------------------------------------

    def heartbeat(self, worker_id: int = 0) -> None:
        """A worker showed signs of life (any message, not just results).

        Also maintains the per-worker ``health.worker<N>.heartbeat_ts``
        gauge, so the exporter's ``/metrics`` shows liveness per worker."""
        if not self.enabled:
            return
        with self._lock:
            self._heartbeats[worker_id] = self._clock()
        from repro.observability import get_observability

        metrics = get_observability().metrics
        if metrics.enabled:
            metrics.gauge(f"health.worker{worker_id}.heartbeat_ts").set(
                time.time()
            )

    def record_result(self, termination_kind: Optional[str]) -> None:
        """Fold one completed experiment into the latency EWMA and the
        outcome-mix window."""
        if not self.enabled:
            return
        with self._lock:
            now = self._clock()
            previous = (
                self._last_completion
                if self._last_completion is not None
                else self._started_at
            )
            if previous is not None:
                interval = max(0.0, now - previous)
                self._ewma_interval = (
                    interval
                    if self._ewma_interval is None
                    else (
                        _EWMA_ALPHA * interval
                        + (1.0 - _EWMA_ALPHA) * self._ewma_interval
                    )
                )
            self._last_completion = now
            self.n_done += 1
            self._stalled = False  # progress re-arms the stall alert
            kind = termination_kind or "none"
            if len(self._window) == self._window.maxlen:
                evicted = self._window[0]
                self._baseline_counts[evicted] = (
                    self._baseline_counts.get(evicted, 0) + 1
                )
            self._window.append(kind)

    # -- derived figures ---------------------------------------------------

    def stall_threshold_seconds(self) -> float:
        """Silence longer than this raises a ``stall`` alert."""
        ewma = self._ewma_interval
        if ewma is None:
            return self.stall_floor_seconds
        return max(self.stall_floor_seconds, self.stall_factor * ewma)

    def seconds_since_progress(self) -> Optional[float]:
        last = (
            self._last_completion
            if self._last_completion is not None
            else self._started_at
        )
        if last is None:
            return None
        return max(0.0, self._clock() - last)

    def rate(self) -> float:
        """Experiments per second, from the inter-completion EWMA."""
        ewma = self._ewma_interval
        if ewma is None or ewma <= 0.0:
            return 0.0
        return 1.0 / ewma

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion (``None`` before any data)."""
        ewma = self._ewma_interval
        if ewma is None or self.n_total <= 0:
            return None
        return max(0, self.n_total - self.n_done) * ewma

    def drift_distance(self) -> Optional[float]:
        """Total-variation distance between the recent outcome window
        and the running baseline (``None`` until both are populated)."""
        with self._lock:
            return self._drift_distance_locked()

    def _drift_distance_locked(self) -> Optional[float]:
        baseline_total = sum(self._baseline_counts.values())
        window_total = len(self._window)
        if (
            baseline_total < self.drift_min_baseline
            or window_total < self._window.maxlen
        ):
            return None
        window_counts: Dict[str, int] = {}
        for kind in self._window:
            window_counts[kind] = window_counts.get(kind, 0) + 1
        kinds = set(self._baseline_counts) | set(window_counts)
        distance = 0.0
        for kind in kinds:
            p_baseline = self._baseline_counts.get(kind, 0) / baseline_total
            p_window = window_counts.get(kind, 0) / window_total
            distance += abs(p_baseline - p_window)
        return 0.5 * distance

    def heartbeat_ages(self) -> Dict[int, float]:
        """Seconds since each worker's last sign of life."""
        with self._lock:
            now = self._clock()
            return {
                worker_id: max(0.0, now - ts)
                for worker_id, ts in sorted(self._heartbeats.items())
            }

    # -- alerting ----------------------------------------------------------

    def check(self) -> List[HealthAlert]:
        """Evaluate stall and drift conditions; returns *new* alerts.

        Edge-triggered: a stall alert fires once per stall episode
        (re-armed by the next completed experiment); a drift alert fires
        once per excursion above the threshold (re-armed when the
        distance falls back under half the threshold). New alerts are
        also emitted as ``health-alert`` trace events and
        ``health.<kind>_alerts_total`` counters, so every caller —
        controller, parallel event loop, or an exporter ``/healthz``
        probe — surfaces them identically."""
        if not self.enabled:
            return []
        new_alerts: List[HealthAlert] = []
        with self._lock:
            now = self._clock()
            silence = (
                None
                if self._started_at is None
                else max(
                    0.0,
                    now
                    - (
                        self._last_completion
                        if self._last_completion is not None
                        else self._started_at
                    ),
                )
            )
            threshold = self.stall_threshold_seconds()
            if (
                silence is not None
                and silence > threshold
                and not self._stalled
                and self._paused_at is None
                and self.n_done < self.n_total
            ):
                self._stalled = True
                new_alerts.append(
                    HealthAlert(
                        kind="stall",
                        message=(
                            f"no experiment completed in {silence:.1f}s "
                            f"(threshold {threshold:.1f}s, "
                            f"{self.n_done}/{self.n_total} done)"
                        ),
                        ts=time.time(),
                        fields={
                            "silence_seconds": silence,
                            "threshold_seconds": threshold,
                            "n_done": self.n_done,
                        },
                    )
                )
            distance = self._drift_distance_locked()
            if distance is not None:
                if distance > self.drift_threshold and not self._drifting:
                    self._drifting = True
                    new_alerts.append(
                        HealthAlert(
                            kind="drift",
                            message=(
                                "outcome mix drifted from the running "
                                f"baseline (TV distance {distance:.2f} > "
                                f"{self.drift_threshold:.2f})"
                            ),
                            ts=time.time(),
                            fields={"distance": distance},
                        )
                    )
                elif distance < 0.5 * self.drift_threshold:
                    self._drifting = False
            self.alerts.extend(new_alerts)
        if new_alerts:
            self._emit(new_alerts)
        return new_alerts

    def _emit(self, alerts: List[HealthAlert]) -> None:
        """Mirror new alerts into the tracer and the metrics registry
        (outside the monitor lock; import is lazy to break the package
        import cycle)."""
        from repro.observability import get_observability

        obs = get_observability()
        for alert in alerts:
            obs.tracer.event(
                "health-alert",
                alert=alert.kind,
                campaign=self.campaign_name,
                message=alert.message,
                **alert.fields,
            )
            obs.metrics.counter(f"health.{alert.kind}_alerts_total").inc()

    # -- reporting ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """JSON-serialisable health summary (the ``/healthz`` body)."""
        if not self.enabled:
            return {"status": "disabled"}
        eta = self.eta_seconds()
        drift = self.drift_distance()
        with self._lock:
            stalled = self._stalled
            drifting = self._drifting
            alerts = [alert.to_dict() for alert in self.alerts]
        status = "ok"
        if drifting:
            status = "drift"
        if stalled:
            status = "stall"
        body = {
            "status": status,
            "campaign": self.campaign_name,
            "n_total": self.n_total,
            "n_done": self.n_done,
            "n_workers": self.n_workers,
            "rate_per_second": self.rate(),
            "eta_seconds": eta,
            "stall_threshold_seconds": self.stall_threshold_seconds(),
            "seconds_since_progress": self.seconds_since_progress(),
            "drift_distance": drift,
            "heartbeat_ages": {
                str(worker_id): age
                for worker_id, age in self.heartbeat_ages().items()
            },
            "alerts": alerts,
        }
        analysis = analysis_metrics()
        if analysis:
            body["analysis"] = analysis
        return body


#: Shared disabled monitor (the module default).
NULL_HEALTH = CampaignHealthMonitor(enabled=False)

_current_health: CampaignHealthMonitor = NULL_HEALTH


def get_health() -> CampaignHealthMonitor:
    """The process-global health monitor (disabled by default); what the
    exporter's ``/healthz`` endpoint and the progress window read."""
    return _current_health


def set_health(monitor: CampaignHealthMonitor) -> CampaignHealthMonitor:
    """Install the active campaign's monitor; returns the previous one."""
    global _current_health
    previous = _current_health
    _current_health = monitor
    return previous
