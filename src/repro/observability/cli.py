"""The ``goofi-metrics`` command-line application.

Machine-readable campaign observability from the shell (the ProFIPy-style
service surface):

    goofi-metrics report METRICS.json            # render one snapshot
    goofi-metrics diff OLD.json NEW.json         # compare two snapshots
    goofi-metrics trace TRACE.jsonl              # validate + summarize
    goofi-metrics runs --db g.db                 # RunMeta provenance rows
    goofi-metrics show --db g.db CAMPAIGN        # latest run in detail

``report`` and ``diff`` consume the JSON snapshots written by
``goofi run --metrics-out`` (or ``Observability.write_metrics``);
``trace`` validates every record of a JSONL trace against the schema
(reading a rotated ``.1`` sibling first when the size cap rolled the
file) and prints per-span statistics; ``runs`` and ``show`` read the
schema-versioned ``RunMeta`` provenance table (tool version, RNG seed,
config hash, worker count, final metrics snapshot per campaign run).
All commands exit nonzero on malformed input, so they can gate CI steps.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.observability.report import (
    render_diff,
    render_metrics,
    render_trace_summary,
    summarize_trace,
)
from repro.observability.runmeta import render_run, render_runs
from repro.observability.tracer import (
    TraceSchemaError,
    read_trace_with_rotation,
)

__all__ = ["main"]


def _load_snapshot(path: str) -> Dict[str, Any]:
    """Read and structurally validate a metrics snapshot.

    Truncated files surface as ``json.JSONDecodeError`` (a
    ``ValueError``) and malformed-but-parseable documents are rejected
    here, so ``report``/``diff`` always exit 1 with a one-line message
    instead of tracebacking deep inside the renderers."""
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: not a metrics snapshot object")
    for section in ("counters", "gauges", "histograms"):
        value = snapshot.get(section, {})
        if not isinstance(value, dict):
            raise ValueError(
                f"{path}: snapshot section {section!r} is "
                f"{type(value).__name__}, expected an object"
            )
    for name, data in snapshot.get("histograms", {}).items():
        if not isinstance(data, dict):
            raise ValueError(
                f"{path}: histogram {name!r} is {type(data).__name__}, "
                "expected an object"
            )
    return snapshot


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="goofi-metrics",
        description="report, diff and summarize GOOFI campaign "
        "observability output",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="render a metrics snapshot")
    p.add_argument("snapshot", help="metrics snapshot JSON file")

    p = sub.add_parser("diff", help="diff two metrics snapshots")
    p.add_argument("old", help="baseline snapshot JSON file")
    p.add_argument("new", help="fresh snapshot JSON file")

    p = sub.add_parser("trace", help="validate + summarize a JSONL trace")
    p.add_argument("trace", help="JSONL trace file")

    p = sub.add_parser("runs", help="list RunMeta provenance rows")
    p.add_argument("--db", required=True, help="GOOFI database file")
    p.add_argument("--campaign", help="restrict to one campaign's runs")

    p = sub.add_parser("show", help="show a campaign's latest run in detail")
    p.add_argument("--db", required=True, help="GOOFI database file")
    p.add_argument("campaign", help="campaign name")
    p.add_argument(
        "--run-id", type=int, help="a specific run instead of the latest"
    )

    return parser


def _cmd_runs(args: Any) -> int:
    from repro.db import GoofiDatabase

    with GoofiDatabase(args.db) as db:
        runs = db.list_runs(campaign_name=args.campaign)
    if not runs:
        scope = f" for campaign {args.campaign!r}" if args.campaign else ""
        print(f"no runs recorded{scope}")
        return 0
    print(render_runs(runs))
    return 0


def _cmd_show(args: Any) -> int:
    from repro.db import GoofiDatabase

    with GoofiDatabase(args.db) as db:
        if args.run_id is not None:
            run = db.load_run(args.run_id)
            if run.campaign_name != args.campaign:
                print(
                    f"goofi-metrics: error: run {args.run_id} belongs to "
                    f"campaign {run.campaign_name!r}, not {args.campaign!r}",
                    file=sys.stderr,
                )
                return 1
        else:
            runs = db.list_runs(campaign_name=args.campaign)
            if not runs:
                print(
                    "goofi-metrics: error: no runs recorded for campaign "
                    f"{args.campaign!r}",
                    file=sys.stderr,
                )
                return 1
            run = runs[0]  # list_runs orders newest first
    print(render_run(run))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "report":
            print(render_metrics(_load_snapshot(args.snapshot)))
        elif args.command == "diff":
            print(
                render_diff(
                    _load_snapshot(args.old), _load_snapshot(args.new)
                )
            )
        elif args.command == "trace":
            # Rotation-aware: a capped trace rolls to `<path>.1`; reading
            # the sibling first keeps records in chronological order.
            records = read_trace_with_rotation(args.trace)
            print(f"{len(records)} valid records in {args.trace}")
            print(render_trace_summary(summarize_trace(records)))
        elif args.command == "runs":
            return _cmd_runs(args)
        elif args.command == "show":
            return _cmd_show(args)
    except (OSError, ValueError, TraceSchemaError) as exc:
        print(f"goofi-metrics: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
