"""The ``goofi-metrics`` command-line application.

Machine-readable campaign observability from the shell (the ProFIPy-style
service surface):

    goofi-metrics report METRICS.json            # render one snapshot
    goofi-metrics diff OLD.json NEW.json         # compare two snapshots
    goofi-metrics trace TRACE.jsonl              # validate + summarize

``report`` and ``diff`` consume the JSON snapshots written by
``goofi run --metrics-out`` (or ``Observability.write_metrics``);
``trace`` validates every record of a JSONL trace against the schema and
prints per-span statistics. All commands exit nonzero on malformed
input, so they can gate CI steps.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.observability.report import (
    render_diff,
    render_metrics,
    render_trace_summary,
    summarize_trace,
)
from repro.observability.tracer import TraceSchemaError, read_trace

__all__ = ["main"]


def _load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: not a metrics snapshot object")
    return snapshot


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="goofi-metrics",
        description="report, diff and summarize GOOFI campaign "
        "observability output",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="render a metrics snapshot")
    p.add_argument("snapshot", help="metrics snapshot JSON file")

    p = sub.add_parser("diff", help="diff two metrics snapshots")
    p.add_argument("old", help="baseline snapshot JSON file")
    p.add_argument("new", help="fresh snapshot JSON file")

    p = sub.add_parser("trace", help="validate + summarize a JSONL trace")
    p.add_argument("trace", help="JSONL trace file")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "report":
            print(render_metrics(_load_snapshot(args.snapshot)))
        elif args.command == "diff":
            print(
                render_diff(
                    _load_snapshot(args.old), _load_snapshot(args.new)
                )
            )
        elif args.command == "trace":
            records = read_trace(args.trace)
            print(f"{len(records)} valid records in {args.trace}")
            print(render_trace_summary(summarize_trace(records)))
    except (OSError, ValueError, TraceSchemaError) as exc:
        print(f"goofi-metrics: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
