"""Context-manager profiling hooks: one timer, two sinks.

``profile(obs, name, **fields)`` times a block and lands the duration in
*both* observability surfaces at once: a span record ``name`` in the
tracer (when tracing) and an observation in the ``<name>_seconds``
histogram (when metrics are on). Fully disabled observability returns a
shared no-op singleton, so the hook can stay in hot paths permanently.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.observability import Observability

__all__ = ["NULL_PROFILE", "ProfiledBlock", "profile"]


class _NullProfile:
    """Shared no-op context manager for disabled observability."""

    __slots__ = ()

    def __enter__(self) -> "_NullProfile":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_PROFILE = _NullProfile()


class ProfiledBlock:
    """Times a block into a tracer span and a timing histogram."""

    __slots__ = ("_tracer", "_metrics", "_name", "_fields", "_ts", "_t0")

    def __init__(self, obs: "Observability", name: str,
                 fields: Dict[str, Any]):
        self._tracer = obs.tracer
        self._metrics = obs.metrics
        self._name = name
        self._fields = fields
        self._ts = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "ProfiledBlock":
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._t0
        if self._metrics.enabled:
            self._metrics.histogram(self._name + "_seconds").observe(duration)
        if self._tracer.enabled:
            fields = self._fields
            if exc_type is not None:
                fields = dict(fields)
                fields["exc_type"] = exc_type.__name__
            self._tracer.emit_span(self._name, self._ts, duration, fields)
        return False


def profile(
    obs: "Observability", name: str, **fields: Any
) -> Union[ProfiledBlock, _NullProfile]:
    """A context manager timing ``name`` into ``obs`` (no-op when off)."""
    if not obs.enabled:
        return NULL_PROFILE
    return ProfiledBlock(obs, name, fields)
