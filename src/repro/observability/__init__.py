"""``repro.observability`` — tracing, metrics and profiling hooks.

A zero-dependency, low-overhead instrumentation subsystem for campaign
runs (motivated by ZOFI's near-zero measurement overhead and ProFIPy's
machine-readable run reports):

* :class:`~repro.observability.tracer.Tracer` — structured JSONL
  span/event records (campaign, experiment, scan-chain op, DB batch)
  with a shared no-op singleton on the disabled path;
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges and timing histograms, snapshotable to JSON, mergeable across
  worker processes;
* :func:`~repro.observability.profiling.profile` — a context-manager
  timer feeding both surfaces at once.

The subsystem is wired through ``repro.core.algorithms`` (experiments,
scan ops, pre-injection sampling), ``repro.core.parallel`` (per-worker
metric shipping), ``repro.core.controller`` (campaign state events) and
``repro.db.database`` (batch latency); its snapshots feed the progress
window and the CI benchmark-regression gate.

Process-global access pattern::

    from repro import observability

    obs = observability.configure(trace_path="run.jsonl", metrics=True)
    ...  # run campaigns; instrumented code calls get_observability()
    snapshot = obs.metrics.snapshot()
    observability.disable()

Environment bootstrap: setting ``GOOFI_TRACE=<path>`` and/or
``GOOFI_METRICS=1`` enables the corresponding surface at import time —
the hook the CI benchmark job uses without code changes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Any, ContextManager, Dict, List, Optional

from repro.observability.flightrec import (
    NULL_FLIGHTREC,
    FlightRecorder,
    read_flight_dump,
)
from repro.observability.health import (
    NULL_HEALTH,
    CampaignHealthMonitor,
    HealthAlert,
    get_health,
    set_health,
)
from repro.observability.metrics import (
    NULL_INSTRUMENT,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiling import NULL_PROFILE, ProfiledBlock, profile
from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    TraceSchemaError,
    Tracer,
    read_trace,
    read_trace_with_rotation,
    validate_record,
)

__all__ = [
    "CampaignHealthMonitor",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthAlert",
    "Histogram",
    "MetricsRegistry",
    "NULL_FLIGHTREC",
    "NULL_HEALTH",
    "NULL_INSTRUMENT",
    "NULL_PROFILE",
    "NULL_SPAN",
    "Observability",
    "ObservabilityConfig",
    "TraceSchemaError",
    "Tracer",
    "configure",
    "current_config",
    "disable",
    "get_health",
    "get_observability",
    "profile",
    "read_flight_dump",
    "read_trace",
    "read_trace_with_rotation",
    "set_health",
    "set_observability",
    "start_exporter",
    "validate_record",
    "worker_trace_path",
]


def start_exporter(port: int = 0, host: str = "127.0.0.1"):
    """Serve live telemetry over HTTP (see
    :mod:`repro.observability.exporter`); imported lazily so the plain
    tracing/metrics path never touches ``http.server``."""
    from repro.observability.exporter import MetricsExporter

    return MetricsExporter(port=port, host=host)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Picklable recipe for (re)building an :class:`Observability` —
    what the parallel campaign runner ships to worker processes."""

    trace_path: Optional[str] = None
    metrics: bool = False
    #: Flight-recorder ring capacity (0 disables the recorder).
    flight_records: int = 0
    #: Directory flight-recorder dumps are written to.
    flight_dir: str = "."

    @property
    def enabled(self) -> bool:
        return (
            self.trace_path is not None
            or self.metrics
            or self.flight_records > 0
        )


def worker_trace_path(trace_path: Optional[str], worker_id: int) -> Optional[str]:
    """The sibling trace file a worker writes (workers never share the
    parent's file handle, so traces stay valid under concurrency)."""
    if trace_path is None:
        return None
    root, ext = os.path.splitext(trace_path)
    return f"{root}.worker{worker_id}{ext or '.jsonl'}"


class Observability:
    """A tracer, a metrics registry and a flight recorder behind one
    switch."""

    __slots__ = ("tracer", "metrics", "flightrec", "config")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        config: Optional[ObservabilityConfig] = None,
        flightrec: Optional[FlightRecorder] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.flightrec = flightrec if flightrec is not None else NULL_FLIGHTREC
        self.config = config if config is not None else ObservabilityConfig()

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.flightrec.enabled
        )

    def profile(self, name: str, **fields: Any) -> ContextManager[Any]:
        """Time a block into a span record and a ``<name>_seconds``
        histogram; returns the shared no-op singleton when disabled."""
        if not self.enabled:
            return NULL_PROFILE
        return ProfiledBlock(self, name, fields)

    def flush(self) -> None:
        self.tracer.flush()

    def close(self) -> None:
        if self.tracer is not NULL_TRACER:
            self.tracer.close()

    def write_metrics(self, path: str) -> Dict[str, Any]:
        """Dump the current metrics snapshot as JSON to ``path``."""
        snapshot = self.metrics.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return snapshot


def build(
    config: ObservabilityConfig,
    trace_buffer: Optional[List[Dict[str, Any]]] = None,
) -> Observability:
    """Construct a fresh :class:`Observability` from a config.

    With ``flight_records`` set, the flight recorder is attached to the
    tracer as a ring sink: span/event records land in the bounded ring
    even when no trace file is configured, so dead-process post-mortems
    do not require full tracing."""
    flightrec = (
        FlightRecorder(
            capacity=config.flight_records, directory=config.flight_dir
        )
        if config.flight_records > 0
        else NULL_FLIGHTREC
    )
    ring = flightrec if flightrec.enabled else None
    tracer = (
        Tracer(path=config.trace_path, buffer=trace_buffer, ring=ring)
        if (
            config.trace_path is not None
            or trace_buffer is not None
            or ring is not None
        )
        else NULL_TRACER
    )
    metrics = MetricsRegistry() if config.metrics else NULL_METRICS
    return Observability(tracer, metrics, config, flightrec)


_DISABLED = Observability()
_current: Observability = _DISABLED


def get_observability() -> Observability:
    """The process-global observability (disabled by default)."""
    return _current


def set_observability(obs: Observability) -> Observability:
    """Swap the process-global observability; returns the previous one.

    Never closes the previous instance — under the ``fork`` start method
    a worker inherits the parent's instance, and closing it would flush
    the inherited file-buffer copy into the parent's trace file."""
    global _current
    previous = _current
    _current = obs
    return previous


def configure(
    trace_path: Optional[str] = None,
    metrics: bool = True,
    trace_buffer: Optional[List[Dict[str, Any]]] = None,
    flight_records: int = 0,
    flight_dir: str = ".",
) -> Observability:
    """Enable observability process-wide and return the instance."""
    obs = build(
        ObservabilityConfig(
            trace_path=trace_path,
            metrics=metrics,
            flight_records=flight_records,
            flight_dir=flight_dir,
        ),
        trace_buffer=trace_buffer,
    )
    set_observability(obs)
    return obs


def configure_worker(
    config: ObservabilityConfig, worker_id: int
) -> Observability:
    """Install a fresh, isolated observability in a worker process:
    a sibling trace file, an empty metrics registry and its own flight
    recorder (never the parent's inherited state). With flight
    recording on, a SIGTERM handler turns a parent-side watchdog kill
    into a ``flight-<pid>.jsonl`` post-mortem dump."""
    worker_config = replace(
        config, trace_path=worker_trace_path(config.trace_path, worker_id)
    )
    obs = build(worker_config)
    set_observability(obs)
    if obs.flightrec.enabled:
        obs.flightrec.install_signal_handler()
    return obs


def current_config() -> ObservabilityConfig:
    """The picklable config describing the current global state."""
    return _current.config


def disable() -> None:
    """Flush and drop the process-global observability."""
    global _current
    if _current is not _DISABLED:
        _current.close()
    _current = _DISABLED


#: Exporter started by the env bootstrap (kept referenced so its daemon
#: thread and bound socket live for the life of the process).
_bootstrap_exporter: Optional[Any] = None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "")
    if raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _bootstrap_from_env() -> None:
    """Zero-code-change enablement for CI and services: ``GOOFI_TRACE``
    (trace file), ``GOOFI_METRICS`` (metrics registry),
    ``GOOFI_FLIGHT_RECORDS`` (flight-recorder ring capacity) and
    ``GOOFI_METRICS_PORT`` (OpenMetrics exporter; ``0`` binds an
    ephemeral port, logged via ``GOOFI_METRICS_PORT_FILE`` when set)."""
    global _bootstrap_exporter
    trace_path = os.environ.get("GOOFI_TRACE") or None
    metrics = os.environ.get("GOOFI_METRICS", "") not in ("", "0", "false")
    flight_records = _env_int("GOOFI_FLIGHT_RECORDS") or 0
    port = _env_int("GOOFI_METRICS_PORT")
    if port is not None:
        metrics = True  # an exporter without a registry would serve nothing
    if trace_path is not None or metrics or flight_records > 0:
        configure(
            trace_path=trace_path,
            metrics=metrics,
            flight_records=flight_records,
            flight_dir=os.environ.get("GOOFI_FLIGHT_DIR", "."),
        )
    if port is not None:
        _bootstrap_exporter = start_exporter(port=port)
        port_file = os.environ.get("GOOFI_METRICS_PORT_FILE")
        if port_file:
            try:
                with open(port_file, "w", encoding="utf-8") as handle:
                    handle.write(str(_bootstrap_exporter.port) + "\n")
            except OSError:  # pragma: no cover - best-effort port report
                pass


_bootstrap_from_env()
