"""``repro.observability`` — tracing, metrics and profiling hooks.

A zero-dependency, low-overhead instrumentation subsystem for campaign
runs (motivated by ZOFI's near-zero measurement overhead and ProFIPy's
machine-readable run reports):

* :class:`~repro.observability.tracer.Tracer` — structured JSONL
  span/event records (campaign, experiment, scan-chain op, DB batch)
  with a shared no-op singleton on the disabled path;
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges and timing histograms, snapshotable to JSON, mergeable across
  worker processes;
* :func:`~repro.observability.profiling.profile` — a context-manager
  timer feeding both surfaces at once.

The subsystem is wired through ``repro.core.algorithms`` (experiments,
scan ops, pre-injection sampling), ``repro.core.parallel`` (per-worker
metric shipping), ``repro.core.controller`` (campaign state events) and
``repro.db.database`` (batch latency); its snapshots feed the progress
window and the CI benchmark-regression gate.

Process-global access pattern::

    from repro import observability

    obs = observability.configure(trace_path="run.jsonl", metrics=True)
    ...  # run campaigns; instrumented code calls get_observability()
    snapshot = obs.metrics.snapshot()
    observability.disable()

Environment bootstrap: setting ``GOOFI_TRACE=<path>`` and/or
``GOOFI_METRICS=1`` enables the corresponding surface at import time —
the hook the CI benchmark job uses without code changes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Any, ContextManager, Dict, List, Optional

from repro.observability.metrics import (
    NULL_INSTRUMENT,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiling import NULL_PROFILE, ProfiledBlock, profile
from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    TraceSchemaError,
    Tracer,
    read_trace,
    validate_record,
)

__all__ = [
    "NULL_INSTRUMENT",
    "NULL_PROFILE",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "Tracer",
    "TraceSchemaError",
    "configure",
    "current_config",
    "disable",
    "get_observability",
    "profile",
    "read_trace",
    "set_observability",
    "validate_record",
    "worker_trace_path",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Picklable recipe for (re)building an :class:`Observability` —
    what the parallel campaign runner ships to worker processes."""

    trace_path: Optional[str] = None
    metrics: bool = False

    @property
    def enabled(self) -> bool:
        return self.trace_path is not None or self.metrics


def worker_trace_path(trace_path: Optional[str], worker_id: int) -> Optional[str]:
    """The sibling trace file a worker writes (workers never share the
    parent's file handle, so traces stay valid under concurrency)."""
    if trace_path is None:
        return None
    root, ext = os.path.splitext(trace_path)
    return f"{root}.worker{worker_id}{ext or '.jsonl'}"


class Observability:
    """A tracer plus a metrics registry behind one switch."""

    __slots__ = ("tracer", "metrics", "config")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        config: Optional[ObservabilityConfig] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.config = config if config is not None else ObservabilityConfig()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def profile(self, name: str, **fields: Any) -> ContextManager[Any]:
        """Time a block into a span record and a ``<name>_seconds``
        histogram; returns the shared no-op singleton when disabled."""
        if not self.enabled:
            return NULL_PROFILE
        return ProfiledBlock(self, name, fields)

    def flush(self) -> None:
        self.tracer.flush()

    def close(self) -> None:
        if self.tracer is not NULL_TRACER:
            self.tracer.close()

    def write_metrics(self, path: str) -> Dict[str, Any]:
        """Dump the current metrics snapshot as JSON to ``path``."""
        snapshot = self.metrics.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return snapshot


def build(
    config: ObservabilityConfig,
    trace_buffer: Optional[List[Dict[str, Any]]] = None,
) -> Observability:
    """Construct a fresh :class:`Observability` from a config."""
    tracer = (
        Tracer(path=config.trace_path, buffer=trace_buffer)
        if (config.trace_path is not None or trace_buffer is not None)
        else NULL_TRACER
    )
    metrics = MetricsRegistry() if config.metrics else NULL_METRICS
    return Observability(tracer, metrics, config)


_DISABLED = Observability()
_current: Observability = _DISABLED


def get_observability() -> Observability:
    """The process-global observability (disabled by default)."""
    return _current


def set_observability(obs: Observability) -> Observability:
    """Swap the process-global observability; returns the previous one.

    Never closes the previous instance — under the ``fork`` start method
    a worker inherits the parent's instance, and closing it would flush
    the inherited file-buffer copy into the parent's trace file."""
    global _current
    previous = _current
    _current = obs
    return previous


def configure(
    trace_path: Optional[str] = None,
    metrics: bool = True,
    trace_buffer: Optional[List[Dict[str, Any]]] = None,
) -> Observability:
    """Enable observability process-wide and return the instance."""
    obs = build(
        ObservabilityConfig(trace_path=trace_path, metrics=metrics),
        trace_buffer=trace_buffer,
    )
    set_observability(obs)
    return obs


def configure_worker(
    config: ObservabilityConfig, worker_id: int
) -> Observability:
    """Install a fresh, isolated observability in a worker process:
    a sibling trace file and an empty metrics registry (never the
    parent's inherited state)."""
    worker_config = replace(
        config, trace_path=worker_trace_path(config.trace_path, worker_id)
    )
    obs = build(worker_config)
    set_observability(obs)
    return obs


def current_config() -> ObservabilityConfig:
    """The picklable config describing the current global state."""
    return _current.config


def disable() -> None:
    """Flush and drop the process-global observability."""
    global _current
    if _current is not _DISABLED:
        _current.close()
    _current = _DISABLED


def _bootstrap_from_env() -> None:
    trace_path = os.environ.get("GOOFI_TRACE") or None
    metrics = os.environ.get("GOOFI_METRICS", "") not in ("", "0", "false")
    if trace_path is not None or metrics:
        configure(trace_path=trace_path, metrics=metrics)


_bootstrap_from_env()
