"""OpenMetrics/Prometheus HTTP exporter for live campaign telemetry.

Serves the process-global :class:`~repro.observability.metrics.
MetricsRegistry` over HTTP while a campaign runs — the ProFIPy-style
"fault injection as a monitorable service" surface, built on nothing
but the stdlib ``http.server`` in a daemon thread:

* ``GET /metrics``  — OpenMetrics text exposition (scrapable by
  Prometheus); counters, gauges and histograms with cumulative buckets,
  ``worker<N>.``-prefixed metrics folded into a ``worker`` label;
* ``GET /healthz``  — JSON body from the active
  :class:`~repro.observability.health.CampaignHealthMonitor` (HTTP 503
  while a stall alert is live, so load-balancer-style checks work);
* ``GET /snapshot`` — the raw JSON metrics snapshot (the same document
  ``goofi run --metrics-out`` writes at exit, but live).

Activation: ``goofi run --serve-metrics PORT`` for one run, or the
``GOOFI_METRICS_PORT`` environment variable for zero-code-change
bootstrap (port ``0`` binds an ephemeral port; the chosen port is
printed/logged). The server thread is a daemon — it never blocks
process exit — and the handler resolves the registry *per request*, so
reconfiguring observability mid-flight is safe.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observability.health import get_health
from repro.observability.metrics import MetricsRegistry

__all__ = [
    "CONTENT_TYPE_OPENMETRICS",
    "MetricsExporter",
    "render_openmetrics",
    "sanitize_metric_name",
    "start_exporter",
]

CONTENT_TYPE_OPENMETRICS = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_PREFIX = "goofi_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_WORKER_PREFIX = re.compile(r"^worker(\d+)\.")


def sanitize_metric_name(name: str) -> str:
    """Fold an internal metric name into the OpenMetrics charset
    (``campaign.n_done`` → ``goofi_campaign_n_done``)."""
    sanitized = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return _NAME_PREFIX + sanitized


def _split_worker_label(name: str) -> Tuple[str, str]:
    """Strip a ``worker<N>.`` prefix into a ``worker="N"`` label pair
    (the parallel runner's per-worker namespacing)."""
    match = _WORKER_PREFIX.match(name)
    if match is None:
        return name, ""
    return name[match.end():], f'{{worker="{match.group(1)}"}}'


def _format_number(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(snapshot: Dict[str, Any]) -> str:
    """The OpenMetrics text exposition of one metrics snapshot.

    Counter families get the mandatory ``_total`` sample suffix (names
    already ending in ``_total`` are not doubled), histogram buckets are
    accumulated into the cumulative ``le`` form, and every family is
    announced with a ``# TYPE`` line. Ends with the ``# EOF`` marker the
    OpenMetrics spec requires."""
    lines: List[str] = []
    counters: Dict[str, List[Tuple[str, Any]]] = {}
    for name, value in sorted(snapshot.get("counters", {}).items()):
        base, labels = _split_worker_label(name)
        if base.endswith("_total"):
            base = base[: -len("_total")]
        counters.setdefault(sanitize_metric_name(base), []).append(
            (labels, value)
        )
    for family, samples in counters.items():
        lines.append(f"# TYPE {family} counter")
        for labels, value in samples:
            lines.append(f"{family}_total{labels} {_format_number(value)}")

    gauges: Dict[str, List[Tuple[str, Any]]] = {}
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        base, labels = _split_worker_label(name)
        gauges.setdefault(sanitize_metric_name(base), []).append(
            (labels, value)
        )
    for family, samples in gauges.items():
        lines.append(f"# TYPE {family} gauge")
        for labels, value in samples:
            lines.append(f"{family}{labels} {_format_number(value)}")

    for name, data in sorted(snapshot.get("histograms", {}).items()):
        base, labels = _split_worker_label(name)
        family = sanitize_metric_name(base)
        label_body = labels[1:-1] if labels else ""
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        bounds = list(data.get("bounds", ()))
        bucket_counts = list(data.get("bucket_counts", ()))
        for position, bound in enumerate(bounds):
            if position < len(bucket_counts):
                cumulative += int(bucket_counts[position])
            le = _format_number(bound)
            label_text = f'le="{le}"'
            if label_body:
                label_text = label_body + "," + label_text
            lines.append(f"{family}_bucket{{{label_text}}} {cumulative}")
        label_text = 'le="+Inf"'
        if label_body:
            label_text = label_body + "," + label_text
        lines.append(
            f"{family}_bucket{{{label_text}}} {int(data.get('count', 0))}"
        )
        lines.append(
            f"{family}_sum{labels} {_format_number(data.get('sum', 0.0))}"
        )
        lines.append(f"{family}_count{labels} {int(data.get('count', 0))}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class _ExporterHandler(BaseHTTPRequestHandler):
    """Routes ``/metrics``, ``/healthz`` and ``/snapshot``."""

    # Set by the server object; typed here for mypy.
    server: "_ExporterServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_openmetrics(self.server.registry().snapshot())
            self._reply(200, CONTENT_TYPE_OPENMETRICS, body)
        elif path == "/snapshot":
            body = json.dumps(
                self.server.registry().snapshot(), indent=2, sort_keys=True
            )
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            monitor = self.server.health()
            check = getattr(monitor, "check", None)
            if callable(check):
                # A probe runs live stall/drift detection: the monitor
                # can flag a stall even while the campaign thread is
                # blocked inside a hung experiment.
                check()
            status = monitor.status()
            code = 503 if status.get("status") == "stall" else 200
            self._reply(
                code, "application/json", json.dumps(status, sort_keys=True)
            )
        else:
            self._reply(404, "text/plain", f"no such endpoint: {path}\n")

    def _reply(self, code: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (scrapes are frequent)."""


class _ExporterServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        registry: Callable[[], MetricsRegistry],
        health: Callable[[], Any],
    ) -> None:
        super().__init__(address, _ExporterHandler)
        self.registry = registry
        self.health = health


class MetricsExporter:
    """The exporter's lifecycle handle: bound port, URLs, stop()."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[Callable[[], MetricsRegistry]] = None,
        health: Optional[Callable[[], Any]] = None,
    ) -> None:
        if registry is None:
            def registry() -> MetricsRegistry:
                from repro.observability import get_observability

                return get_observability().metrics
        self._server = _ExporterServer(
            (host, port), registry, health if health is not None else get_health
        )
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"goofi-metrics-exporter:{self.port}",
            daemon=True,
        )
        self._thread.start()

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_exporter(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[Callable[[], MetricsRegistry]] = None,
) -> MetricsExporter:
    """Start serving live telemetry; returns the running exporter (its
    ``.port`` is the bound port — pass ``0`` for an ephemeral one)."""
    return MetricsExporter(port=port, host=host, registry=registry)
