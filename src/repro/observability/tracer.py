"""Structured JSONL tracing with a no-op fast path.

The :class:`Tracer` emits one JSON object per line, either *span* records
(a named duration with attached fields — campaign, experiment, scan-chain
op, DB batch) or *event* records (a point in time). A disabled tracer is
free: :meth:`Tracer.span` returns a shared no-op context-manager
singleton and :meth:`Tracer.event` returns immediately, so leaving the
instrumentation compiled into the hot paths costs two attribute lookups
and a truth test per call site (ZOFI's "near zero overhead when off"
requirement).

Record schema (version 1)::

    {"v": 1, "kind": "span",  "name": ..., "ts": <unix seconds>,
     "dur_s": <float>, "pid": <int>, "fields": {...}}
    {"v": 1, "kind": "event", "name": ..., "ts": <unix seconds>,
     "pid": <int>, "fields": {...}}

``read_trace`` parses and validates a trace file back into dictionaries
(the round-trip contract asserted by the test suite).

File output is size-capped: when the trace file exceeds ``max_bytes``
(default from ``GOOFI_TRACE_MAX_MB``, 256 MiB) the tracer rolls it to
``<path>.1`` — one rotation generation, so a runaway campaign holds at
most twice the cap on disk instead of growing unboundedly.
``read_trace_with_rotation`` (and ``goofi-metrics trace``) read the
rotated sibling first, preserving record order across the roll.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from repro.observability.flightrec import FlightRecorder

__all__ = [
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "Tracer",
    "default_trace_max_bytes",
    "read_trace",
    "read_trace_with_rotation",
    "rotated_sibling",
    "validate_record",
]

SCHEMA_VERSION = 1

#: Records buffered before the tracer flushes its file sink.
_FLUSH_EVERY = 256

#: Default trace size cap in MiB (``GOOFI_TRACE_MAX_MB`` overrides).
_DEFAULT_MAX_MB = 256


def default_trace_max_bytes() -> int:
    """The size cap applied to trace files: ``GOOFI_TRACE_MAX_MB``
    megabytes (default 256). Zero or negative disables rotation."""
    raw = os.environ.get("GOOFI_TRACE_MAX_MB", "")
    try:
        mb = float(raw) if raw else float(_DEFAULT_MAX_MB)
    except ValueError:
        mb = float(_DEFAULT_MAX_MB)
    return int(mb * 1024 * 1024)


def rotated_sibling(path: str) -> str:
    """The rotation target of a trace file (``trace.jsonl.1``)."""
    return path + ".1"


class TraceSchemaError(ValueError):
    """A trace record does not conform to the JSONL span/event schema."""


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Context manager emitting one span record on exit."""

    __slots__ = ("_tracer", "_name", "_fields", "_ts", "_t0")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._ts = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self._fields = dict(self._fields)
            self._fields["exc_type"] = exc_type.__name__
        self._tracer.emit_span(self._name, self._ts, duration, self._fields)
        return False


class Tracer:
    """JSONL span/event emitter.

    ``path`` appends records to a file; ``buffer`` appends record dicts
    to a caller-owned list (the in-memory mode used by tests and the
    progress window); ``ring`` mirrors every record into a
    :class:`~repro.observability.flightrec.FlightRecorder` — a tracer
    with *only* a ring is enabled but touches no disk until the ring is
    dumped. With none of the three, the tracer is disabled and every
    call is a no-op.

    ``max_bytes`` caps the file sink: past the cap the file rolls to
    ``<path>.1`` (``None`` means the ``GOOFI_TRACE_MAX_MB`` default;
    ``0`` disables rotation).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        buffer: Optional[List[Dict[str, Any]]] = None,
        ring: Optional[FlightRecorder] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._path = path
        self._buffer = buffer
        self._ring = ring if ring is not None and ring.enabled else None
        self._file: Optional[IO[str]] = None
        self._pending = 0
        self._bytes = 0
        self._max_bytes = (
            default_trace_max_bytes() if max_bytes is None else max_bytes
        )
        self._lock = threading.Lock()
        self.enabled = (
            path is not None or buffer is not None or self._ring is not None
        )

    @property
    def path(self) -> Optional[str]:
        return self._path

    # -- emitting ----------------------------------------------------------

    def span(self, name: str, **fields: Any) -> Union[_Span, _NullSpan]:
        """A context manager timing ``name``; no-op singleton when off."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, fields)

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point-in-time event record (no-op when disabled)."""
        if not self.enabled:
            return
        self._write(
            {
                "v": SCHEMA_VERSION,
                "kind": "event",
                "name": name,
                "ts": time.time(),
                "pid": os.getpid(),
                "fields": fields,
            }
        )

    def emit_span(
        self, name: str, ts: float, duration: float, fields: Dict[str, Any]
    ) -> None:
        if not self.enabled:
            return
        self._write(
            {
                "v": SCHEMA_VERSION,
                "kind": "span",
                "name": name,
                "ts": ts,
                "dur_s": duration,
                "pid": os.getpid(),
                "fields": fields,
            }
        )

    # -- sinks -------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        if self._ring is not None:
            self._ring.record(record)
        with self._lock:
            if self._buffer is not None:
                self._buffer.append(record)
            if self._path is not None:
                if self._file is None:
                    self._file = open(self._path, "a", encoding="utf-8")
                    try:
                        self._bytes = os.path.getsize(self._path)
                    except OSError:
                        self._bytes = 0
                line = json.dumps(record, sort_keys=True) + "\n"
                self._file.write(line)
                self._bytes += len(line)
                self._pending += 1
                if self._pending >= _FLUSH_EVERY:
                    self._file.flush()
                    self._pending = 0
                if self._max_bytes > 0 and self._bytes >= self._max_bytes:
                    self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Roll the full trace file to ``<path>.1`` (caller holds the
        lock). One generation is kept: a second roll replaces the first,
        bounding total disk use at twice ``max_bytes``."""
        assert self._path is not None and self._file is not None
        self._file.flush()
        self._file.close()
        try:
            os.replace(self._path, rotated_sibling(self._path))
        except OSError:  # pragma: no cover - rotation must not kill runs
            pass
        self._file = open(self._path, "a", encoding="utf-8")
        self._bytes = 0
        self._pending = 0

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._pending = 0

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None
            self.enabled = False


#: Shared disabled tracer (the module default).
NULL_TRACER = Tracer()


# ---------------------------------------------------------------------------
# Reading and validating traces (the round-trip contract)
# ---------------------------------------------------------------------------

_COMMON_KEYS = {"v", "kind", "name", "ts", "pid", "fields"}


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one parsed trace record against the schema; returns it."""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"record is not an object: {record!r}")
    missing = _COMMON_KEYS - set(record)
    if missing:
        raise TraceSchemaError(f"record misses keys {sorted(missing)}")
    if record["v"] != SCHEMA_VERSION:
        raise TraceSchemaError(f"unknown schema version {record['v']!r}")
    if record["kind"] not in ("span", "event"):
        raise TraceSchemaError(f"unknown record kind {record['kind']!r}")
    if not isinstance(record["name"], str) or not record["name"]:
        raise TraceSchemaError("record name must be a non-empty string")
    if not isinstance(record["ts"], (int, float)):
        raise TraceSchemaError("record ts must be numeric")
    if not isinstance(record["pid"], int):
        raise TraceSchemaError("record pid must be an int")
    if not isinstance(record["fields"], dict):
        raise TraceSchemaError("record fields must be an object")
    if record["kind"] == "span":
        duration = record.get("dur_s")
        if not isinstance(duration, (int, float)) or duration < 0:
            raise TraceSchemaError("span dur_s must be a non-negative number")
    return record


def iter_trace(path: str) -> Iterator[Dict[str, Any]]:
    """Yield validated records from a JSONL trace file."""
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from exc
            yield validate_record(record)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse and validate a whole JSONL trace file."""
    return list(iter_trace(path))


def read_trace_with_rotation(path: str) -> List[Dict[str, Any]]:
    """Parse a trace plus its rotated sibling (``<path>.1``), oldest
    records first — what ``goofi-metrics trace`` uses so a size-capped
    trace still summarizes as one run."""
    records: List[Dict[str, Any]] = []
    sibling = rotated_sibling(path)
    if os.path.exists(sibling):
        records.extend(iter_trace(sibling))
    records.extend(iter_trace(path))
    return records
