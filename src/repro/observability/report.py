"""Rendering and diffing metrics snapshots and trace summaries.

The text surfaces of the observability subsystem: the ``goofi-metrics``
CLI renders and diffs the JSON snapshots campaigns emit, the progress
window appends a one-line live digest, and ``summarize_trace`` folds a
JSONL trace into per-span-name statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "diff_snapshots",
    "progress_metrics_line",
    "render_diff",
    "render_metrics",
    "render_trace_summary",
    "sum_counters",
    "summarize_trace",
]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def sum_counters(snapshot: Dict[str, Any], suffix: str) -> float:
    """Sum every counter whose name ends with ``suffix`` — e.g. the
    per-worker ``experiments_total`` counts of a parallel campaign."""
    return sum(
        value
        for name, value in snapshot.get("counters", {}).items()
        if name.endswith(suffix)
    )


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Human-readable table of one metrics snapshot."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:44s} {_format_value(value):>12s}")
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:44s} {_format_value(value):>12s}")
    if histograms:
        lines.append("histograms:")
        lines.append(
            f"  {'name':44s} {'count':>8s} {'mean':>10s} "
            f"{'min':>10s} {'max':>10s} {'total':>10s}"
        )
        for name, data in sorted(histograms.items()):
            count = data.get("count", 0)
            total = data.get("sum", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {name:44s} {count:>8d} {_format_seconds(mean):>10s} "
                f"{_format_seconds(data.get('min')):>10s} "
                f"{_format_seconds(data.get('max')):>10s} "
                f"{_format_seconds(total):>10s}"
            )
    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


def diff_snapshots(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[Tuple[str, str, Optional[float], Optional[float]]]:
    """Per-metric (kind, name, old, new) rows for every scalar metric
    appearing in either snapshot (histograms compare their means)."""
    rows: List[Tuple[str, str, Optional[float], Optional[float]]] = []
    for kind in ("counters", "gauges"):
        names = sorted(set(old.get(kind, {})) | set(new.get(kind, {})))
        for name in names:
            rows.append(
                (kind[:-1], name, old.get(kind, {}).get(name),
                 new.get(kind, {}).get(name))
            )
    names = sorted(
        set(old.get("histograms", {})) | set(new.get("histograms", {}))
    )
    for name in names:

        def _mean(snapshot: Dict[str, Any]) -> Optional[float]:
            data = snapshot.get("histograms", {}).get(name)
            if not data or not data.get("count"):
                return None
            return data["sum"] / data["count"]

        rows.append(("histogram-mean", name, _mean(old), _mean(new)))
    return rows


def render_diff(old: Dict[str, Any], new: Dict[str, Any]) -> str:
    """Tabular diff of two snapshots with relative change.

    A metric present on only one side is never an error: it renders as
    ``added`` (only in the new snapshot) or ``removed`` (only in the old
    one) — a renamed counter or a feature toggled between runs must not
    crash the CI regression gate that wraps this report."""
    lines = [
        f"{'kind':15s} {'metric':44s} {'old':>12s} {'new':>12s} {'delta':>10s}"
    ]
    for kind, name, old_value, new_value in diff_snapshots(old, new):
        if old_value is None and new_value is None:
            continue
        if old_value == new_value:
            continue
        old_text = "-" if old_value is None else _format_value(old_value)
        new_text = "-" if new_value is None else _format_value(new_value)
        if old_value is None:
            delta = "added"
        elif new_value is None:
            delta = "removed"
        elif old_value != 0:
            delta = f"{100.0 * (new_value - old_value) / old_value:+.1f}%"
        else:
            delta = "-"
        lines.append(f"{kind:15s} {name:44s} {old_text:>12s} "
                     f"{new_text:>12s} {delta:>10s}")
    if len(lines) == 1:
        lines.append("(no differences)")
    return "\n".join(lines)


def summarize_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold trace records into per-name span statistics and event counts."""
    spans: Dict[str, Dict[str, Any]] = {}
    events: Dict[str, int] = {}
    for record in records:
        name = record["name"]
        if record["kind"] == "event":
            events[name] = events.get(name, 0) + 1
            continue
        stats = spans.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stats["count"] += 1
        stats["total_s"] += record["dur_s"]
        stats["max_s"] = max(stats["max_s"], record["dur_s"])
    return {"spans": spans, "events": events}


def render_trace_summary(summary: Dict[str, Any]) -> str:
    lines = [
        f"{'span':30s} {'count':>8s} {'total':>10s} {'mean':>10s} {'max':>10s}"
    ]
    for name, stats in sorted(summary.get("spans", {}).items()):
        count = stats["count"]
        mean = stats["total_s"] / count if count else 0.0
        lines.append(
            f"{name:30s} {count:>8d} {_format_seconds(stats['total_s']):>10s} "
            f"{_format_seconds(mean):>10s} "
            f"{_format_seconds(stats['max_s']):>10s}"
        )
    events = summary.get("events", {})
    if events:
        lines.append("events:")
        for name, count in sorted(events.items()):
            lines.append(f"  {name:28s} {count:>8d}")
    return "\n".join(lines)


def progress_metrics_line(snapshot: Dict[str, Any]) -> str:
    """The one-line digest the progress window appends when metrics are
    enabled: experiment throughput, scan/DB latency, prune ratio."""
    parts: List[str] = []
    experiments = sum_counters(snapshot, "experiments_total")
    if experiments:
        parts.append(f"experiments={int(experiments)}")
    histogram = snapshot.get("histograms", {}).get("experiment_seconds")
    if histogram and histogram.get("count"):
        parts.append(
            "exp-mean="
            + _format_seconds(histogram["sum"] / histogram["count"])
        )
    batches = snapshot.get("counters", {}).get("db.batches_total")
    if batches:
        parts.append(f"db-batches={int(batches)}")
    samples = snapshot.get("counters", {}).get("preinjection.samples_total")
    rejected = snapshot.get("counters", {}).get(
        "preinjection.rejected_total"
    )
    if samples:
        parts.append(f"prune={(rejected or 0) / samples:.2f}")
    return "metrics: " + "  ".join(parts) if parts else ""
