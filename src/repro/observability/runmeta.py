"""Run provenance: who ran what, with which seeds, and what came out.

The paper's Figure-4 schema keys every logged state to a campaign row
and every re-run to its parent experiment. :class:`RunMeta` extends
that provenance chain to *runs*: one schema-versioned row per campaign
execution recording the tool version, the RNG seed, a content hash of
the campaign configuration, the worker count, and — once the run ends —
the final state and metrics snapshot. Re-running an analysis months
later, the RunMeta row answers "was this the same code, the same
config, the same seeds?" without trusting the filesystem.

Storage lives in :mod:`repro.db` (the ``RunMeta`` table,
``record_run_start`` / ``record_run_end`` / ``list_runs``); this module
owns the value object, the config hash, and the text rendering used by
``goofi-metrics runs`` / ``goofi-metrics show``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "RUNMETA_SCHEMA_VERSION",
    "RunMeta",
    "campaign_config_hash",
    "render_run",
    "render_runs",
    "tool_version",
]

#: Version of the RunMeta row contract (bumped when fields change).
#: v2 adds the campaign-fabric provenance tags ``job_id`` / ``tenant``.
RUNMETA_SCHEMA_VERSION = 2


def tool_version() -> str:
    """The version of this GOOFI reproduction, for provenance rows."""
    try:
        import repro

        return str(getattr(repro, "__version__", "unknown"))
    except ImportError:  # pragma: no cover - repro is always importable here
        return "unknown"


def campaign_config_hash(campaign: Any) -> str:
    """Content hash of a campaign definition: sha256 over its canonical
    JSON form, so two runs hash equal iff every knob (workload,
    locations, fault model, trigger, seeds, …) was identical."""
    text = campaign.to_json()
    # Canonicalise: parse and re-dump with sorted keys, so the hash does
    # not depend on dataclass field order across versions.
    canonical = json.dumps(json.loads(text), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunMeta:
    """One campaign execution's provenance row."""

    campaign_name: str
    seed: int
    config_hash: str
    n_workers: int = 1
    n_experiments: int = 0
    tool_version: str = field(default_factory=tool_version)
    state: str = "running"
    started_at: str = ""
    finished_at: Optional[str] = None
    meta_version: int = RUNMETA_SCHEMA_VERSION
    metrics_snapshot: Optional[Dict[str, Any]] = None
    run_id: Optional[int] = None
    #: Campaign-fabric provenance: the ``goofi serve`` job this run
    #: executed for, and the tenant that submitted it (``None`` for
    #: runs started outside the fabric).
    job_id: Optional[str] = None
    tenant: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "campaign_name": self.campaign_name,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "n_workers": self.n_workers,
            "n_experiments": self.n_experiments,
            "tool_version": self.tool_version,
            "state": self.state,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "meta_version": self.meta_version,
            "metrics_snapshot": self.metrics_snapshot,
            "job_id": self.job_id,
            "tenant": self.tenant,
        }


def render_runs(runs: List[RunMeta]) -> str:
    """The ``goofi-metrics runs`` table."""
    lines = [
        f"{'run':>5s} {'campaign':24s} {'state':10s} {'seed':>10s} "
        f"{'workers':>7s} {'exps':>6s} {'config':12s} {'started':19s}"
    ]
    for run in runs:
        lines.append(
            f"{run.run_id if run.run_id is not None else '-':>5} "
            f"{run.campaign_name:24s} {run.state:10s} {run.seed:>10d} "
            f"{run.n_workers:>7d} {run.n_experiments:>6d} "
            f"{run.config_hash[:12]:12s} {run.started_at[:19]:19s}"
        )
    if len(lines) == 1:
        lines.append("(no runs recorded)")
    return "\n".join(lines)


def render_run(run: RunMeta) -> str:
    """The ``goofi-metrics show`` detail block for one run."""
    lines = [
        f"run:          {run.run_id}",
        f"campaign:     {run.campaign_name}",
        f"state:        {run.state}",
        f"tool version: {run.tool_version}",
        f"seed:         {run.seed}",
        f"config hash:  {run.config_hash}",
        f"workers:      {run.n_workers}",
        f"experiments:  {run.n_experiments}",
        f"started:      {run.started_at}",
        f"finished:     {run.finished_at or '-'}",
        f"meta version: {run.meta_version}",
    ]
    if run.job_id is not None:
        lines.append(f"fabric job:   {run.job_id}")
        lines.append(f"tenant:       {run.tenant or '-'}")
    snapshot = run.metrics_snapshot
    if snapshot:
        from repro.observability.report import render_metrics

        lines.append("final metrics snapshot:")
        for line in render_metrics(snapshot).splitlines():
            lines.append("  " + line)
    return "\n".join(lines)
