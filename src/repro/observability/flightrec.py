"""Crash flight recorder: a bounded ring of recent trace records.

A :class:`FlightRecorder` keeps the last *N* span/event records emitted
in its process in a fixed-size ring buffer — cheap enough to leave on
for every campaign, with or without full JSONL tracing. When something
dies (an unhandled exception in the campaign loop, a watchdog kill, a
``worker-failure`` termination) the ring is dumped to
``flight-<pid>.jsonl`` so the post-mortem has the events leading up to
the death even though nothing was being traced to disk.

The recorder plugs into the :class:`~repro.observability.tracer.Tracer`
as a *ring sink*: every record the tracer would emit is also appended to
the ring, and a tracer with **only** a ring attached is enabled but
writes no file — bounded memory, zero disk I/O until a dump is
requested. Dump files are schema-valid JSONL (each line passes
``validate_record``), prefixed with one ``flight-dump`` event carrying
the dump reason, so ``goofi-metrics trace flight-<pid>.jsonl`` renders
them directly.

Worker processes killed by the parent's watchdog receive ``SIGTERM``;
:meth:`FlightRecorder.install_signal_handler` converts that into a dump
before the process exits, which is how post-mortems of hung workers are
possible at all.

Disabled path: :data:`NULL_FLIGHTREC` is a shared no-op singleton — the
PR 3 invariant (a truth test per call site) holds for every dump hook.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "NULL_FLIGHTREC",
    "flight_path",
    "read_flight_dump",
]

#: Default number of trace records retained in the ring.
DEFAULT_CAPACITY = 256


def flight_path(directory: str, pid: Optional[int] = None) -> str:
    """The dump file for process ``pid`` (default: this process)."""
    pid = os.getpid() if pid is None else pid
    return os.path.join(directory or ".", f"flight-{pid}.jsonl")


class FlightRecorder:
    """Bounded in-memory ring of trace records, dumpable on death."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: str = ".",
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled and capacity > 0
        self.capacity = capacity
        self.directory = directory
        self._ring: Deque[Dict[str, Any]] = deque(
            maxlen=capacity if capacity > 0 else 1
        )
        self._lock = threading.Lock()
        self._dumped_reasons: List[str] = []

    # -- recording ---------------------------------------------------------

    def record(self, record: Dict[str, Any]) -> None:
        """Append one trace record to the ring (oldest records fall off).

        Called by the tracer for every span/event record it emits; the
        deque append is O(1) and the lock is uncontended in the serial
        case, so leaving the recorder on costs nanoseconds per record."""
        if not self.enabled:
            return
        with self._lock:
            self._ring.append(record)

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[Dict[str, Any]]:
        """A stable copy of the ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    # -- dumping -----------------------------------------------------------

    @property
    def dump_reasons(self) -> List[str]:
        """Reasons of every dump taken so far (test/debug surface)."""
        return list(self._dumped_reasons)

    def dump(self, reason: str, **fields: Any) -> Optional[str]:
        """Write the ring to ``flight-<pid>.jsonl`` and return the path.

        The file starts with a ``flight-dump`` event record carrying
        ``reason`` plus any extra ``fields``, followed by the buffered
        records oldest-first. Repeated dumps overwrite: the latest ring
        is a superset of what mattered. Returns ``None`` when disabled;
        never raises (a failing post-mortem writer must not mask the
        original death)."""
        if not self.enabled:
            return None
        path = flight_path(self.directory)
        header = {
            "v": 1,
            "kind": "event",
            "name": "flight-dump",
            "ts": time.time(),
            "pid": os.getpid(),
            "fields": dict(fields, reason=reason),
        }
        try:
            with self._lock:
                records = list(self._ring)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                for record in records:
                    handle.write(
                        json.dumps(record, sort_keys=True, default=str) + "\n"
                    )
            self._dumped_reasons.append(reason)
            return path
        except OSError:  # pragma: no cover - post-mortem must not mask death
            return None

    # -- death hooks -------------------------------------------------------

    def install_signal_handler(self) -> bool:
        """Dump the ring when the process is SIGTERM'd (watchdog kill).

        Installed in worker processes only (the handler re-raises the
        default disposition after dumping, so the process still dies and
        the parent's ``join`` sees a terminated child). Returns whether
        the handler was installed — signal handlers only work on the
        main thread, and a recorder that is disabled installs nothing."""
        if not self.enabled:
            return False
        if threading.current_thread() is not threading.main_thread():
            return False

        def _on_sigterm(signum: int, frame: Any) -> None:
            self.dump("watchdog-kill", signal="SIGTERM")
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)

        try:
            signal.signal(signal.SIGTERM, _on_sigterm)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            return False
        return True


#: Shared disabled recorder (the module default).
NULL_FLIGHTREC = FlightRecorder(capacity=0, enabled=False)


def read_flight_dump(path: str) -> List[Dict[str, Any]]:
    """Parse and validate a flight-recorder dump (schema-valid JSONL,
    first record is the ``flight-dump`` header event)."""
    from repro.observability.tracer import TraceSchemaError, read_trace

    records = read_trace(path)
    if not records or records[0]["name"] != "flight-dump":
        raise TraceSchemaError(
            f"{path}: not a flight-recorder dump (missing header event)"
        )
    return records
